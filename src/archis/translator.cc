#include "archis/translator.h"

#include <functional>

#include "xquery/parser.h"

namespace archis::core {

using xquery::Expr;
using xquery::ExprKind;
using xquery::ExprPtr;
using xquery::PathStep;

namespace {

Status Unsupported(const std::string& what) {
  return Status::Unsupported("translator: " + what +
                             " (falls back to native XQuery)");
}

/// What an XQuery variable is bound to.
struct BoundVar {
  bool is_entity = false;  ///< binds the per-key entity (key table var)
  size_t plan_idx = 0;     ///< plan variable index
  std::string relation;
  size_t group = 0;
};

/// An operand of a comparison: a plan column or a constant.
struct Operand {
  bool is_const = false;
  HColRef col;
  minirel::Value constant;
};

class Translator {
 public:
  Translator(const TranslatorContext& ctx) : ctx_(ctx) {}

  Result<SqlXmlPlan> Translate(const ExprPtr& query) {
    ExprPtr flwor = query;
    // Pattern: element NAME { FLWOR } wraps the per-row output in an
    // XMLAgg inside one outer element (the paper's QUERY 1 shape).
    std::string wrapper;
    if (query->kind == ExprKind::kElementCtor &&
        query->children.size() == 1 &&
        query->children[0]->kind == ExprKind::kFlwor) {
      wrapper = query->str;
      flwor = query->children[0];
    }
    if (flwor->kind != ExprKind::kFlwor) {
      return Unsupported("top level must be a FLWOR or element{FLWOR}");
    }
    ARCHIS_RETURN_NOT_OK(TranslateClauses(flwor));
    if (flwor->where != nullptr) {
      ARCHIS_RETURN_NOT_OK(TranslateCondition(flwor->where));
    }
    ARCHIS_ASSIGN_OR_RETURN(OutputSpec out, BuildOutput(flwor->ret));
    if (!wrapper.empty()) {
      OutputSpec agg;
      agg.kind = OutputSpec::Kind::kAgg;
      agg.children.push_back(std::move(out));
      OutputSpec elem;
      elem.kind = OutputSpec::Kind::kElement;
      elem.name = wrapper;
      elem.children.push_back(std::move(agg));
      plan_.output = std::move(elem);
    } else {
      plan_.output = std::move(out);
    }
    if (plan_.vars.empty()) {
      return Unsupported("no H-table variable identified");
    }
    // Variables created during output generation inherit their group's
    // single-object restriction.
    for (PlanVar& v : plan_.vars) {
      auto it = pending_id_eq_.find(v.join_group);
      if (it != pending_id_eq_.end()) v.id_eq = it->second;
    }
    // XQuery results are node sequences: joined rows that differ only in
    // predicate variables must not fan out the output.
    plan_.distinct_output = true;
    return std::move(plan_);
  }

 private:
  // -- Variable-range identification (Algorithm 1, lines 1-3) ---------------

  size_t NewVar(const std::string& xq_name, const std::string& relation,
                const std::string& attribute, size_t group) {
    PlanVar var;
    var.xq_name = xq_name;
    var.relation = relation;
    var.attribute = attribute;
    var.join_group = group;
    plan_.vars.push_back(std::move(var));
    return plan_.vars.size() - 1;
  }

  /// Reuses or creates the attribute variable for `relation.attr` within a
  /// join group (Algorithm 1 line 5 then generates Vi.id = Vj.id, which the
  /// executor derives from shared join groups).
  size_t AttrVar(const std::string& relation, const std::string& attr,
                 size_t group) {
    std::string key = std::to_string(group) + "/" + relation + "/" + attr;
    auto it = attr_vars_.find(key);
    if (it != attr_vars_.end()) return it->second;
    size_t idx = NewVar(relation + "." + attr, relation, attr, group);
    attr_vars_[key] = idx;
    return idx;
  }

  /// Handles a for/let binding expression; registers the variable.
  Status TranslateClauses(const ExprPtr& flwor) {
    for (const xquery::ForLetClause& clause : flwor->clauses) {
      ARCHIS_RETURN_NOT_OK(BindClause(clause.var, clause.expr));
    }
    return Status::OK();
  }

  Status BindClause(const std::string& var_name, const ExprPtr& expr) {
    if (expr->kind != ExprKind::kPath) {
      return Unsupported("for/let binding must be a path expression");
    }
    const ExprPtr& source = expr->children[0];
    if (source->kind == ExprKind::kFunctionCall &&
        (source->str == "doc" || source->str == "document")) {
      return BindDocPath(var_name, expr);
    }
    if (source->kind == ExprKind::kVarRef) {
      return BindRelativePath(var_name, source->str, expr);
    }
    return Unsupported("binding source must be doc() or a variable");
  }

  /// doc("x")/root/entity[...]   -> key-table variable
  /// doc("x")/root/entity[...]/attr[...] -> attribute variable
  Status BindDocPath(const std::string& var_name, const ExprPtr& path) {
    const ExprPtr& doc_call = path->children[0];
    if (doc_call->children.size() != 1 ||
        doc_call->children[0]->kind != ExprKind::kStringLit) {
      return Unsupported("doc() argument must be a string literal");
    }
    const std::string doc_name = doc_call->children[0]->str;
    auto binding = ctx_.docs.find(doc_name);
    if (binding == ctx_.docs.end()) {
      return Status::NotFound("no archived relation registered for doc('" +
                              doc_name + "')");
    }
    const DocBinding& doc = binding->second;
    const auto& steps = path->steps;
    size_t step_idx = 0;
    if (step_idx < steps.size() && steps[step_idx].name == doc.root_tag) {
      ++step_idx;
    }
    if (step_idx >= steps.size() || steps[step_idx].name != doc.entity_tag) {
      return Unsupported("doc path must step through " + doc.root_tag + "/" +
                         doc.entity_tag);
    }
    const PathStep& entity_step = steps[step_idx];
    ++step_idx;

    size_t group = next_group_++;
    if (step_idx == steps.size()) {
      // Binds the entity: a key-table variable.
      size_t idx = NewVar("$" + var_name, doc.relation, "", group);
      bound_[var_name] = {true, idx, doc.relation, group};
      ARCHIS_RETURN_NOT_OK(
          ApplyPredicates(idx, doc.relation, group, entity_step.predicates));
      return Status::OK();
    }
    // Entity-step predicates first (they may spawn attribute variables).
    // The entity itself needs a key variable only if a temporal predicate
    // targets it; value predicates translate to attribute variables.
    std::optional<size_t> key_var;
    ARCHIS_RETURN_NOT_OK(ApplyEntityPredicates(
        doc.relation, group, entity_step.predicates, &key_var));
    // Then the attribute step.
    const PathStep& attr_step = steps[step_idx];
    ++step_idx;
    if (step_idx != steps.size()) {
      return Unsupported("paths deeper than entity/attribute");
    }
    size_t idx = AttrVar(doc.relation, attr_step.name, group);
    plan_.vars[idx].xq_name = "$" + var_name;
    bound_[var_name] = {false, idx, doc.relation, group};
    ARCHIS_RETURN_NOT_OK(
        ApplyPredicates(idx, doc.relation, group, attr_step.predicates));
    return Status::OK();
  }

  /// $e/attr[...] -> attribute variable in $e's join group.
  Status BindRelativePath(const std::string& var_name,
                          const std::string& base_var, const ExprPtr& path) {
    auto it = bound_.find(base_var);
    if (it == bound_.end()) {
      return Status::NotFound("translator: unbound variable $" + base_var);
    }
    const BoundVar& base = it->second;
    if (path->steps.size() != 1) {
      return Unsupported("relative binding must be a single step");
    }
    const PathStep& step = path->steps[0];
    size_t idx = AttrVar(base.relation, step.name, base.group);
    bound_[var_name] = {false, idx, base.relation, base.group};
    return ApplyPredicates(idx, base.relation, base.group, step.predicates);
  }

  // -- Predicate and where-condition translation (lines 4-12) ----------------

  /// Predicates on an entity step: value comparisons spawn attribute
  /// variables; temporal predicates require (and create) the key variable.
  Status ApplyEntityPredicates(const std::string& relation, size_t group,
                               const std::vector<ExprPtr>& predicates,
                               std::optional<size_t>* key_var) {
    for (const ExprPtr& pred : predicates) {
      ARCHIS_RETURN_NOT_OK(
          ApplyEntityPredicate(relation, group, pred, key_var));
    }
    return Status::OK();
  }

  Status ApplyEntityPredicate(const std::string& relation, size_t group,
                              const ExprPtr& pred,
                              std::optional<size_t>* key_var) {
    if (pred->kind == ExprKind::kAnd) {
      for (const ExprPtr& child : pred->children) {
        ARCHIS_RETURN_NOT_OK(
            ApplyEntityPredicate(relation, group, child, key_var));
      }
      return Status::OK();
    }
    if (pred->kind == ExprKind::kComparison) {
      // name="Bob" / salary > 60000 / tstart(.) <= date ...
      return TranslateComparisonWithContext(pred, relation, group, key_var);
    }
    if (pred->kind == ExprKind::kFunctionCall) {
      // toverlaps(., telement(c1, c2)) etc. targeting the entity interval.
      size_t kv = EnsureKeyVar(relation, group, key_var);
      return TranslateIntervalFn(pred, kv);
    }
    return Unsupported("entity predicate form");
  }

  size_t EnsureKeyVar(const std::string& relation, size_t group,
                      std::optional<size_t>* key_var) {
    if (key_var != nullptr && key_var->has_value()) return **key_var;
    size_t idx = NewVar(relation + ".key", relation, "", group);
    if (key_var != nullptr) *key_var = idx;
    return idx;
  }

  /// Predicates on a concrete variable (attribute step or key binding).
  Status ApplyPredicates(size_t var_idx, const std::string& relation,
                         size_t group, const std::vector<ExprPtr>& preds) {
    for (const ExprPtr& pred : preds) {
      ARCHIS_RETURN_NOT_OK(ApplyPredicate(var_idx, relation, group, pred));
    }
    return Status::OK();
  }

  Status ApplyPredicate(size_t var_idx, const std::string& relation,
                        size_t group, const ExprPtr& pred) {
    if (pred->kind == ExprKind::kAnd) {
      for (const ExprPtr& child : pred->children) {
        ARCHIS_RETURN_NOT_OK(ApplyPredicate(var_idx, relation, group, child));
      }
      return Status::OK();
    }
    if (pred->kind == ExprKind::kComparison) {
      return TranslateComparison(pred, var_idx, relation, group);
    }
    if (pred->kind == ExprKind::kFunctionCall) {
      return TranslateIntervalFn(pred, var_idx);
    }
    return Unsupported("predicate form");
  }

  /// toverlaps/tcontains/tequals/tmeets/tprecedes with '.' or variables.
  Status TranslateIntervalFn(const ExprPtr& call, size_t context_var) {
    static const std::map<std::string, CrossCond::Kind> kKinds = {
        {"toverlaps", CrossCond::Kind::kOverlaps},
        {"tcontains", CrossCond::Kind::kContains},
        {"tequals", CrossCond::Kind::kEquals},
        {"tmeets", CrossCond::Kind::kMeets},
        {"tprecedes", CrossCond::Kind::kPrecedes},
    };
    auto kind = kKinds.find(call->str);
    if (kind == kKinds.end()) return Unsupported("function " + call->str);
    if (call->children.size() != 2) {
      return Status::InvalidArgument(call->str + " takes two arguments");
    }
    // Constant interval operand (telement of date literals) pushes down.
    auto const_interval =
        [this](const ExprPtr& e) -> std::optional<TimeInterval> {
      if (e->kind == ExprKind::kFunctionCall && e->str == "telement" &&
          e->children.size() == 2) {
        auto d1 = ConstDate(e->children[0]);
        auto d2 = ConstDate(e->children[1]);
        if (d1 && d2) {
          // A backwards constant interval is not pushed down; it falls
          // through to the general evaluation path like any non-constant
          // operand (which reports the error to the user).
          Result<TimeInterval> iv = MakeIntervalChecked(*d1, *d2);
          if (iv.ok()) return *iv;
        }
      }
      return std::nullopt;
    };
    auto var_of = [&](const ExprPtr& e) -> std::optional<size_t> {
      if (e->kind == ExprKind::kContextItem) return context_var;
      if (e->kind == ExprKind::kVarRef) {
        auto it = bound_.find(e->str);
        if (it != bound_.end()) return it->second.plan_idx;
      }
      return std::nullopt;
    };

    auto lhs_iv = const_interval(call->children[0]);
    auto rhs_iv = const_interval(call->children[1]);
    auto lhs_var = var_of(call->children[0]);
    auto rhs_var = var_of(call->children[1]);
    if (kind->second == CrossCond::Kind::kOverlaps &&
        ((lhs_var && rhs_iv) || (rhs_var && lhs_iv))) {
      size_t v = lhs_var ? *lhs_var : *rhs_var;
      TimeInterval iv = lhs_var ? *rhs_iv : *lhs_iv;
      PlanVar& pv = plan_.vars[v];
      pv.overlap = pv.overlap ? pv.overlap->Intersect(iv).value_or(iv) : iv;
      return Status::OK();
    }
    if (lhs_var && rhs_var) {
      CrossCond cond;
      cond.kind = kind->second;
      cond.lhs = {*lhs_var, HCol::kTstart};
      cond.rhs = {*rhs_var, HCol::kTstart};
      plan_.cross_conds.push_back(cond);
      return Status::OK();
    }
    return Unsupported(call->str + " operand form");
  }

  /// Resolves a comparison operand inside a predicate whose context item is
  /// `context_var` (nullopt at where-clause level).
  Result<Operand> ResolveOperand(const ExprPtr& e,
                                 std::optional<size_t> context_var,
                                 const std::string& relation, size_t group) {
    switch (e->kind) {
      case ExprKind::kStringLit:
        return Operand{true, {}, minirel::Value(e->str)};
      case ExprKind::kNumberLit:
        return Operand{true, {}, minirel::Value(e->num)};
      case ExprKind::kContextItem:
        if (!context_var) return Unsupported("'.' outside predicate");
        return Operand{false, {*context_var, HCol::kValue}, {}};
      case ExprKind::kVarRef: {
        auto it = bound_.find(e->str);
        if (it == bound_.end()) {
          return Status::NotFound("translator: unbound $" + e->str);
        }
        HCol col = it->second.is_entity ? HCol::kId : HCol::kValue;
        return Operand{false, {it->second.plan_idx, col}, {}};
      }
      case ExprKind::kPath: {
        // $e/attr or bare `attr` (context-relative inside a predicate).
        const ExprPtr& source = e->children[0];
        if (e->steps.size() != 1) return Unsupported("deep operand path");
        const std::string& attr = e->steps[0].name;
        std::string rel = relation;
        size_t grp = group;
        if (source->kind == ExprKind::kVarRef) {
          auto it = bound_.find(source->str);
          if (it == bound_.end()) {
            return Status::NotFound("translator: unbound $" + source->str);
          }
          rel = it->second.relation;
          grp = it->second.group;
        } else if (source->kind != ExprKind::kContextItem) {
          return Unsupported("operand path source");
        }
        if (attr == "id") {
          // The key column reads from any variable of the group; use the
          // first one, or materialise the key-table variable if the group
          // has none yet (e.g. an [id=...] predicate on the entity step).
          for (size_t v = 0; v < plan_.vars.size(); ++v) {
            if (plan_.vars[v].join_group == grp) {
              return Operand{false, {v, HCol::kId}, {}};
            }
          }
          size_t idx = NewVar(rel + ".key", rel, "", grp);
          return Operand{false, {idx, HCol::kId}, {}};
        }
        size_t idx = AttrVar(rel, attr, grp);
        return Operand{false, {idx, HCol::kValue}, {}};
      }
      case ExprKind::kFunctionCall: {
        if (e->str == "tstart" || e->str == "tend") {
          if (e->children.size() != 1) {
            return Status::InvalidArgument(e->str + " takes one argument");
          }
          ARCHIS_ASSIGN_OR_RETURN(
              Operand inner,
              ResolveOperand(e->children[0], context_var, relation, group));
          if (inner.is_const) return Unsupported("tstart/tend of constant");
          inner.col.col = e->str == "tstart" ? HCol::kTstart : HCol::kTend;
          return inner;
        }
        if (e->str == "xs:date") {
          auto d = ConstDate(e);
          if (!d) return Unsupported("non-literal xs:date");
          return Operand{true, {}, minirel::Value(*d)};
        }
        if (e->str == "current-date") {
          return Operand{true, {}, minirel::Value(ctx_.current_date)};
        }
        if (e->str == "string" && e->children.size() == 1) {
          return ResolveOperand(e->children[0], context_var, relation, group);
        }
        return Unsupported("function operand " + e->str);
      }
      default:
        return Unsupported("comparison operand");
    }
  }

  std::optional<Date> ConstDate(const ExprPtr& e) {
    if (e->kind == ExprKind::kStringLit) {
      auto d = Date::Parse(e->str);
      if (d.ok()) return *d;
      return std::nullopt;
    }
    if (e->kind == ExprKind::kFunctionCall && e->str == "xs:date" &&
        e->children.size() == 1) {
      return ConstDate(e->children[0]);
    }
    if (e->kind == ExprKind::kFunctionCall && e->str == "current-date") {
      return ctx_.current_date;
    }
    return std::nullopt;
  }

  Status AddVarConstCond(const HColRef& ref, minirel::CompareOp op,
                         const minirel::Value& constant) {
    PlanVar& var = plan_.vars[ref.var];
    switch (ref.col) {
      case HCol::kValue:
        var.value_conds.push_back({op, constant});
        return Status::OK();
      case HCol::kId: {
        std::optional<int64_t> id;
        if (constant.type() == minirel::DataType::kInt64) {
          id = constant.AsInt();
        } else if (constant.type() == minirel::DataType::kDouble) {
          id = static_cast<int64_t>(constant.AsDouble());
        }
        if (op == minirel::CompareOp::kEq && id.has_value()) {
          // Propagate the single-object restriction to the whole group so
          // every store uses its id index (including variables created
          // later — see the fix-up loop in Translate()).
          for (PlanVar& v : plan_.vars) {
            if (v.join_group == var.join_group) v.id_eq = *id;
          }
          pending_id_eq_[var.join_group] = *id;
          return Status::OK();
        }
        return Unsupported("non-equality id condition");
      }
      case HCol::kTstart: {
        minirel::Value c = constant;
        if (constant.type() == minirel::DataType::kString) {
          auto d = Date::Parse(constant.AsString());
          if (d.ok()) c = minirel::Value(*d);
        }
        var.tstart_conds.push_back({op, c});
        DeriveTemporalPushdown(ref.var);
        return Status::OK();
      }
      case HCol::kTend: {
        minirel::Value c = constant;
        if (constant.type() == minirel::DataType::kString) {
          auto d = Date::Parse(constant.AsString());
          if (d.ok()) c = minirel::Value(*d);
        }
        // tend(.) = current-date() means "still current" (Section 4.3).
        if (op == minirel::CompareOp::kEq &&
            c.type() == minirel::DataType::kDate &&
            c.AsDate() == ctx_.current_date) {
          var.current_only = true;
          return Status::OK();
        }
        var.tend_conds.push_back({op, c});
        DeriveTemporalPushdown(ref.var);
        return Status::OK();
      }
    }
    return Status::Internal("bad column ref");
  }

  /// tstart <= a && tend >= b with b <= a derives an interval-overlap
  /// pushdown [b, a], enabling segment pruning (snapshot when a == b).
  void DeriveTemporalPushdown(size_t var_idx) {
    PlanVar& var = plan_.vars[var_idx];
    std::optional<Date> ts_upper, te_lower;
    for (const ValueCond& c : var.tstart_conds) {
      if ((c.op == minirel::CompareOp::kLe ||
           c.op == minirel::CompareOp::kLt) &&
          c.constant.type() == minirel::DataType::kDate) {
        Date d = c.constant.AsDate();
        if (c.op == minirel::CompareOp::kLt) d = d.AddDays(-1);
        if (!ts_upper || d < *ts_upper) ts_upper = d;
      }
    }
    for (const ValueCond& c : var.tend_conds) {
      if ((c.op == minirel::CompareOp::kGe ||
           c.op == minirel::CompareOp::kGt) &&
          c.constant.type() == minirel::DataType::kDate) {
        Date d = c.constant.AsDate();
        if (c.op == minirel::CompareOp::kGt) d = d.AddDays(1);
        if (!te_lower || d > *te_lower) te_lower = d;
      }
    }
    if (ts_upper && te_lower && *te_lower <= *ts_upper) {
      if (*te_lower == *ts_upper) {
        var.snapshot = *te_lower;
      } else {
        var.overlap = MakeInterval(*te_lower, *ts_upper);
      }
    }
  }

  Status TranslateComparisonWithContext(const ExprPtr& cmp,
                                        const std::string& relation,
                                        size_t group,
                                        std::optional<size_t>* key_var) {
    // Inside an entity predicate, `tstart(.)`/`tend(.)` target the key
    // variable; bare names target attribute variables.
    std::optional<size_t> ctx_var;
    bool temporal = false;
    std::function<void(const ExprPtr&)> scan = [&](const ExprPtr& e) {
      if (e->kind == ExprKind::kFunctionCall &&
          (e->str == "tstart" || e->str == "tend")) {
        for (const ExprPtr& c : e->children) {
          if (c->kind == ExprKind::kContextItem) temporal = true;
        }
      }
      for (const ExprPtr& c : e->children) scan(c);
    };
    scan(cmp);
    if (temporal) ctx_var = EnsureKeyVar(relation, group, key_var);
    return TranslateComparisonImpl(cmp, ctx_var, relation, group);
  }

  Status TranslateComparison(const ExprPtr& cmp, size_t context_var,
                             const std::string& relation, size_t group) {
    return TranslateComparisonImpl(cmp, context_var, relation, group);
  }

  Status TranslateComparisonImpl(const ExprPtr& cmp,
                                 std::optional<size_t> context_var,
                                 const std::string& relation, size_t group) {
    ARCHIS_ASSIGN_OR_RETURN(
        Operand lhs,
        ResolveOperand(cmp->children[0], context_var, relation, group));
    ARCHIS_ASSIGN_OR_RETURN(
        Operand rhs,
        ResolveOperand(cmp->children[1], context_var, relation, group));
    ARCHIS_ASSIGN_OR_RETURN(minirel::CompareOp op,
                            minirel::ParseCompareOp(cmp->str));
    if (!lhs.is_const && rhs.is_const) {
      return AddVarConstCond(lhs.col, op, rhs.constant);
    }
    if (lhs.is_const && !rhs.is_const) {
      // Flip the comparison.
      minirel::CompareOp flipped = op;
      switch (op) {
        case minirel::CompareOp::kLt: flipped = minirel::CompareOp::kGt; break;
        case minirel::CompareOp::kLe: flipped = minirel::CompareOp::kGe; break;
        case minirel::CompareOp::kGt: flipped = minirel::CompareOp::kLt; break;
        case minirel::CompareOp::kGe: flipped = minirel::CompareOp::kLe; break;
        default: break;
      }
      return AddVarConstCond(rhs.col, flipped, lhs.constant);
    }
    if (!lhs.is_const && !rhs.is_const) {
      CrossCond cond;
      cond.kind = CrossCond::Kind::kCompare;
      cond.lhs = lhs.col;
      cond.op = op;
      cond.rhs = rhs.col;
      plan_.cross_conds.push_back(cond);
      return Status::OK();
    }
    return Unsupported("constant-only comparison");
  }

  /// where-clause conjuncts.
  Status TranslateCondition(const ExprPtr& cond) {
    switch (cond->kind) {
      case ExprKind::kAnd: {
        for (const ExprPtr& child : cond->children) {
          ARCHIS_RETURN_NOT_OK(TranslateCondition(child));
        }
        return Status::OK();
      }
      case ExprKind::kComparison:
        return TranslateComparisonImpl(cond, std::nullopt, "", 0);
      case ExprKind::kNot: {
        const ExprPtr& inner = cond->children[0];
        if (inner->kind == ExprKind::kFunctionCall &&
            inner->str == "empty" && inner->children.size() == 1) {
          const ExprPtr& arg = inner->children[0];
          // not(empty(overlapinterval($a,$b))) == toverlaps($a,$b).
          if (arg->kind == ExprKind::kFunctionCall &&
              arg->str == "overlapinterval") {
            auto call = std::make_shared<Expr>(ExprKind::kFunctionCall);
            call->str = "toverlaps";
            call->children = arg->children;
            return TranslateIntervalFn(call, /*context_var=*/0);
          }
          // not(empty($v)) where $v is a bound variable: the id join is
          // already existential — nothing to add.
          if (arg->kind == ExprKind::kVarRef && bound_.count(arg->str) != 0) {
            return Status::OK();
          }
        }
        return Unsupported("negation form");
      }
      case ExprKind::kFunctionCall:
        return TranslateIntervalFn(cond, /*context_var=*/0);
      default:
        return Unsupported("where-clause form");
    }
  }

  // -- Output generation (lines 13-19) ---------------------------------------

  Result<OutputSpec> BuildOutput(const ExprPtr& ret) {
    switch (ret->kind) {
      case ExprKind::kVarRef: {
        auto it = bound_.find(ret->str);
        if (it == bound_.end()) {
          return Status::NotFound("translator: unbound $" + ret->str);
        }
        return VarElement(it->second);
      }
      case ExprKind::kPath: {
        const ExprPtr& source = ret->children[0];
        if (source->kind != ExprKind::kVarRef || ret->steps.size() != 1) {
          return Unsupported("return path form");
        }
        auto it = bound_.find(source->str);
        if (it == bound_.end()) {
          return Status::NotFound("translator: unbound $" + source->str);
        }
        const std::string& attr = ret->steps[0].name;
        if (attr == "id") {
          OutputSpec spec;
          spec.kind = OutputSpec::Kind::kElement;
          spec.name = "id";
          spec.attr_var = it->second.plan_idx;
          spec.column = HColRef{it->second.plan_idx, HCol::kId};
          return spec;
        }
        size_t idx = AttrVar(it->second.relation, attr, it->second.group);
        OutputSpec spec;
        spec.kind = OutputSpec::Kind::kElement;
        spec.name = attr;
        spec.attr_var = idx;
        spec.column = HColRef{idx, HCol::kValue};
        return spec;
      }
      case ExprKind::kElementCtor: {
        OutputSpec spec;
        spec.kind = OutputSpec::Kind::kElement;
        spec.name = ret->str;
        for (const ExprPtr& child : ret->children) {
          if (child->kind == ExprKind::kSequence) {
            for (const ExprPtr& item : child->children) {
              ARCHIS_ASSIGN_OR_RETURN(OutputSpec c, BuildOutput(item));
              spec.children.push_back(std::move(c));
            }
          } else {
            ARCHIS_ASSIGN_OR_RETURN(OutputSpec c, BuildOutput(child));
            spec.children.push_back(std::move(c));
          }
        }
        return spec;
      }
      case ExprKind::kTextLit: {
        OutputSpec spec;
        spec.kind = OutputSpec::Kind::kText;
        spec.name = ret->str;
        return spec;
      }
      case ExprKind::kSequence: {
        // A bare sequence return wraps in a row element.
        OutputSpec spec;
        spec.kind = OutputSpec::Kind::kElement;
        spec.name = "row";
        for (const ExprPtr& item : ret->children) {
          ARCHIS_ASSIGN_OR_RETURN(OutputSpec c, BuildOutput(item));
          spec.children.push_back(std::move(c));
        }
        return spec;
      }
      case ExprKind::kFunctionCall: {
        if (ret->str == "overlapinterval" && ret->children.size() == 2) {
          auto var_of = [this](const ExprPtr& e) -> std::optional<size_t> {
            if (e->kind != ExprKind::kVarRef) return std::nullopt;
            auto it = bound_.find(e->str);
            if (it == bound_.end()) return std::nullopt;
            return it->second.plan_idx;
          };
          auto l = var_of(ret->children[0]);
          auto r = var_of(ret->children[1]);
          if (!l || !r) return Unsupported("overlapinterval operands");
          OutputSpec spec;
          spec.kind = OutputSpec::Kind::kInterval;
          spec.ivl_lhs = *l;
          spec.ivl_rhs = *r;
          return spec;
        }
        if (ret->str == "tavg" && ret->children.size() == 1 &&
            ret->children[0]->kind == ExprKind::kVarRef) {
          auto it = bound_.find(ret->children[0]->str);
          if (it == bound_.end()) {
            return Status::NotFound("translator: unbound tavg argument");
          }
          if (it->second.plan_idx != 0) {
            return Unsupported("tavg over a non-leading variable");
          }
          plan_.aggregate = PlanAggregate::kTAvg;
          OutputSpec spec;
          spec.kind = OutputSpec::Kind::kElement;
          spec.name = "tavg";
          return spec;
        }
        return Unsupported("return function " + ret->str);
      }
      default:
        return Unsupported("return clause form");
    }
  }

  Result<OutputSpec> VarElement(const BoundVar& var) {
    OutputSpec spec;
    spec.kind = OutputSpec::Kind::kElement;
    const PlanVar& pv = plan_.vars[var.plan_idx];
    if (var.is_entity) {
      spec.name = EntityTagFor(pv.relation);
      spec.attr_var = var.plan_idx;
      spec.column = HColRef{var.plan_idx, HCol::kId};
    } else {
      spec.name = pv.attribute;
      spec.attr_var = var.plan_idx;
      spec.column = HColRef{var.plan_idx, HCol::kValue};
    }
    return spec;
  }

  std::string EntityTagFor(const std::string& relation) const {
    for (const auto& [doc, binding] : ctx_.docs) {
      if (binding.relation == relation) return binding.entity_tag;
    }
    return relation;
  }

  const TranslatorContext& ctx_;
  SqlXmlPlan plan_;
  std::map<std::string, BoundVar> bound_;
  std::map<std::string, size_t> attr_vars_;
  std::map<size_t, int64_t> pending_id_eq_;
  size_t next_group_ = 0;
};

}  // namespace

Result<SqlXmlPlan> TranslateXQuery(const xquery::ExprPtr& query,
                                   const TranslatorContext& ctx) {
  Translator translator(ctx);
  ARCHIS_ASSIGN_OR_RETURN(SqlXmlPlan plan, translator.Translate(query));
  // Late-created attribute variables must inherit their group's id
  // restriction.
  return plan;
}

Result<SqlXmlPlan> TranslateXQuery(const std::string& query,
                                   const TranslatorContext& ctx) {
  ARCHIS_ASSIGN_OR_RETURN(xquery::ExprPtr ast, xquery::ParseXQuery(query));
  return TranslateXQuery(ast, ctx);
}

}  // namespace archis::core
