// BlockZIP (paper Section 8.1, Algorithm 2): block-granular compression.
//
// Instead of compressing a stream as a whole, input records are packed into
// independently-decompressible blocks whose *compressed* size targets the
// storage block size (4000 bytes in the paper). Queries that know which
// blocks they need (via the per-block sid ranges kept by the BlobStore)
// decompress only those blocks.
#ifndef ARCHIS_COMPRESS_BLOCK_ZIP_H_
#define ARCHIS_COMPRESS_BLOCK_ZIP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace archis::compress {

/// One compressed block plus the half-open record range it covers.
struct CompressedBlock {
  std::string data;       ///< zlib-deflated bytes
  uint64_t first_record;  ///< index of the first record in the block
  uint64_t last_record;   ///< index of the last record in the block
  uint64_t raw_bytes;     ///< uncompressed payload size
};

/// BlockZIP configuration.
struct BlockZipOptions {
  /// Target compressed block size in bytes (the paper uses 4000-byte BLOBs).
  size_t block_size = 4000;
  /// Records sampled to estimate the initial compression factor.
  size_t sample_records = 64;
  /// zlib level (1..9).
  int zlib_level = 6;
};

/// Raw zlib helpers (deflate/inflate of a whole buffer).
Result<std::string> ZlibCompress(std::string_view input, int level = 6);
Result<std::string> ZlibUncompress(std::string_view input,
                                   size_t expected_size_hint = 0);

/// Compresses `records` into blocks per Algorithm 2: sample to estimate the
/// compression factor, grow/shrink the records-per-block count so each
/// compressed block lands near `block_size`, and emit the concatenation of
/// block-sized compressed blocks.
///
/// Records are length-prefixed inside a block so decompression recovers the
/// exact record boundaries.
Result<std::vector<CompressedBlock>> BlockZipCompress(
    const std::vector<std::string>& records, BlockZipOptions opts = {});

/// Decompresses one block back into its records.
Result<std::vector<std::string>> BlockZipUncompress(
    const CompressedBlock& block);

/// Total compressed bytes across blocks.
uint64_t TotalCompressedBytes(const std::vector<CompressedBlock>& blocks);

}  // namespace archis::compress

#endif  // ARCHIS_COMPRESS_BLOCK_ZIP_H_
