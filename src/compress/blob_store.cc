#include "compress/blob_store.h"

#include <cstring>

namespace archis::compress {

Status BlobStore::Build(
    const std::vector<std::pair<int64_t, std::string>>& records,
    BlockZipOptions opts) {
  blocks_.clear();
  meta_.clear();
  sids_.clear();
  if (records.empty()) return Status::OK();
  for (size_t i = 1; i < records.size(); ++i) {
    if (records[i].first < records[i - 1].first) {
      return Status::InvalidArgument(
          "BlobStore::Build requires sid-sorted input");
    }
  }
  // Embed the sid in front of each record payload so a block is fully
  // self-describing after decompression.
  std::vector<std::string> payloads;
  payloads.reserve(records.size());
  for (const auto& [sid, rec] : records) {
    std::string p;
    p.append(reinterpret_cast<const char*>(&sid), sizeof(sid));
    p.append(rec);
    payloads.push_back(std::move(p));
  }
  ARCHIS_ASSIGN_OR_RETURN(blocks_, BlockZipCompress(payloads, opts));
  for (size_t b = 0; b < blocks_.size(); ++b) {
    const CompressedBlock& blk = blocks_[b];
    BlobBlockMeta m;
    m.blockno = b;
    m.start_sid = records[blk.first_record].first;
    m.end_sid = records[blk.last_record].first;
    m.compressed_bytes = blk.data.size();
    meta_.push_back(m);
    std::vector<int64_t> sids;
    sids.reserve(blk.last_record - blk.first_record + 1);
    for (uint64_t i = blk.first_record; i <= blk.last_record; ++i) {
      sids.push_back(records[i].first);
    }
    sids_.push_back(std::move(sids));
  }
  return Status::OK();
}

Status BlobStore::ScanRange(
    int64_t lo, int64_t hi,
    const std::function<bool(int64_t, const std::string&)>& fn,
    BlobReadStats* stats) const {
  for (size_t b = 0; b < blocks_.size(); ++b) {
    if (stats != nullptr) ++stats->blocks_scanned;
    if (meta_[b].end_sid < lo || meta_[b].start_sid > hi) continue;
    ARCHIS_ASSIGN_OR_RETURN(std::vector<std::string> payloads,
                            BlockZipUncompress(blocks_[b]));
    if (stats != nullptr) {
      ++stats->blocks_decompressed;
      stats->bytes_decompressed += blocks_[b].raw_bytes;
    }
    for (const std::string& p : payloads) {
      if (p.size() < sizeof(int64_t)) {
        return Status::Corruption("blob record too short");
      }
      int64_t sid;
      std::memcpy(&sid, p.data(), sizeof(sid));
      if (sid < lo || sid > hi) continue;
      std::string rec = p.substr(sizeof(sid));
      if (!fn(sid, rec)) return Status::OK();
    }
  }
  return Status::OK();
}

Status BlobStore::ScanAll(
    const std::function<bool(int64_t, const std::string&)>& fn,
    BlobReadStats* stats) const {
  return ScanRange(INT64_MIN, INT64_MAX, fn, stats);
}

uint64_t BlobStore::CompressedBytes() const {
  return TotalCompressedBytes(blocks_);
}

uint64_t BlobStore::RawBytes() const {
  uint64_t total = 0;
  for (const CompressedBlock& b : blocks_) total += b.raw_bytes;
  return total;
}

}  // namespace archis::compress
