#include "compress/blob_store.h"

#include <algorithm>
#include <cstring>

#include "common/flight_recorder.h"
#include "common/metrics.h"

namespace archis::compress {

namespace {

// Registry mirrors of the per-scan BlobReadStats, so cache effectiveness
// is visible process-wide (DESIGN.md §9) and not only on plumbed scans.
metrics::Counter* CacheHitsMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_block_cache_hits_total",
      "Decompressed-block LRU cache hits across all frozen segments");
  return c;
}

metrics::Counter* CacheMissesMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_block_cache_misses_total",
      "Decompressed-block LRU cache misses across all frozen segments");
  return c;
}

metrics::Counter* BlocksDecompressedMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_blocks_decompressed_total",
      "BlockZIP blocks inflated (cache misses + uncached fetches)");
  return c;
}

metrics::Counter* BytesDecompressedMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_block_decompressed_bytes_total",
      "Raw bytes produced by BlockZIP inflation");
  return c;
}

metrics::Counter* BlocksPrunedMetric() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_blocks_pruned_by_time_total",
      "Blocks skipped by the temporal zone map before decompression");
  return c;
}

}  // namespace

Status BlobStore::Build(
    const std::vector<std::pair<int64_t, std::string>>& records,
    BlockZipOptions opts, const std::vector<TimeInterval>& times) {
  blocks_.clear();
  meta_.clear();
  set_cache_capacity(cache_capacity_);  // drop stale cached blocks
  if (records.empty()) return Status::OK();
  for (size_t i = 1; i < records.size(); ++i) {
    if (records[i].first < records[i - 1].first) {
      return Status::InvalidArgument(
          "BlobStore::Build requires sid-sorted input");
    }
  }
  if (!times.empty() && times.size() != records.size()) {
    return Status::InvalidArgument(
        "BlobStore::Build: times must parallel records");
  }
  // Embed the sid in front of each record payload so a block is fully
  // self-describing after decompression.
  std::vector<std::string> payloads;
  payloads.reserve(records.size());
  for (const auto& [sid, rec] : records) {
    std::string p;
    p.append(reinterpret_cast<const char*>(&sid), sizeof(sid));
    p.append(rec);
    payloads.push_back(std::move(p));
  }
  ARCHIS_ASSIGN_OR_RETURN(blocks_, BlockZipCompress(payloads, opts));
  for (size_t b = 0; b < blocks_.size(); ++b) {
    const CompressedBlock& blk = blocks_[b];
    BlobBlockMeta m;
    m.blockno = b;
    m.start_sid = records[blk.first_record].first;
    m.end_sid = records[blk.last_record].first;
    m.compressed_bytes = blk.data.size();
    if (!times.empty()) {
      m.min_tstart = INT64_MAX;
      m.max_tend = INT64_MIN;
      for (uint64_t i = blk.first_record; i <= blk.last_record; ++i) {
        m.min_tstart = std::min(m.min_tstart, times[i].tstart.days());
        m.max_tend = std::max(m.max_tend, times[i].tend.days());
      }
    }
    meta_.push_back(m);
  }
  return Status::OK();
}

void BlobStore::set_cache_capacity(uint64_t bytes) {
  cache_capacity_ = bytes;
  for (CacheShard& shard : shards_) {
    MutexLock lock(shard.mu);
    shard.entries.clear();
    shard.lru.clear();
    shard.bytes = 0;
  }
}

uint64_t BlobStore::CachedBytes() const {
  uint64_t total = 0;
  for (CacheShard& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.bytes;
  }
  return total;
}

Result<BlobStore::BlockPayloads> BlobStore::FetchBlock(
    size_t b, BlobReadStats* stats) const {
  if (cache_capacity_ == 0) {
    ARCHIS_ASSIGN_OR_RETURN(std::vector<std::string> payloads,
                            BlockZipUncompress(blocks_[b]));
    if (stats != nullptr) {
      ++stats->blocks_decompressed;
      stats->bytes_decompressed += blocks_[b].raw_bytes;
    }
    BlocksDecompressedMetric()->Inc();
    BytesDecompressedMetric()->Inc(blocks_[b].raw_bytes);
    return std::make_shared<const std::vector<std::string>>(
        std::move(payloads));
  }
  CacheShard& shard = shards_[b % kCacheShards];
  {
    MutexLock lock(shard.mu);
    auto it = shard.entries.find(b);
    if (it != shard.entries.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.second);
      if (stats != nullptr) ++stats->block_cache_hits;
      CacheHitsMetric()->Inc();
      return it->second.first;
    }
  }
  // Miss: inflate outside the lock so concurrent readers of other blocks
  // in the shard are not serialised behind zlib.
  ARCHIS_ASSIGN_OR_RETURN(std::vector<std::string> payloads,
                          BlockZipUncompress(blocks_[b]));
  if (stats != nullptr) {
    ++stats->block_cache_misses;
    ++stats->blocks_decompressed;
    stats->bytes_decompressed += blocks_[b].raw_bytes;
  }
  CacheMissesMetric()->Inc();
  BlocksDecompressedMetric()->Inc();
  BytesDecompressedMetric()->Inc(blocks_[b].raw_bytes);
  auto entry = std::make_shared<const std::vector<std::string>>(
      std::move(payloads));
  const uint64_t charge = blocks_[b].raw_bytes;
  const uint64_t shard_capacity = cache_capacity_ / kCacheShards;
  MutexLock lock(shard.mu);
  if (shard.entries.find(b) == shard.entries.end()) {
    shard.lru.push_front(b);
    shard.entries.emplace(b, std::make_pair(entry, shard.lru.begin()));
    shard.bytes += charge;
    while (shard.bytes > shard_capacity && shard.lru.size() > 1) {
      uint64_t victim = shard.lru.back();
      auto vit = shard.entries.find(victim);
      shard.bytes -= blocks_[victim].raw_bytes;
      fr::Record(fr::EventType::kBlockCacheEvict, victim,
                 blocks_[victim].raw_bytes);
      shard.entries.erase(vit);
      shard.lru.pop_back();
    }
  }
  return entry;
}

Status BlobStore::ScanRangeInterval(
    int64_t lo, int64_t hi, const std::optional<TimeInterval>& window,
    const std::function<bool(int64_t, const std::string&)>& fn,
    BlobReadStats* stats) const {
  for (size_t b = 0; b < blocks_.size(); ++b) {
    if (stats != nullptr) ++stats->blocks_scanned;
    if (meta_[b].end_sid < lo || meta_[b].start_sid > hi) continue;
    if (window.has_value() && (meta_[b].max_tend < window->tstart.days() ||
                               meta_[b].min_tstart > window->tend.days())) {
      if (stats != nullptr) ++stats->blocks_pruned_by_time;
      BlocksPrunedMetric()->Inc();
      continue;
    }
    ARCHIS_ASSIGN_OR_RETURN(BlockPayloads payloads, FetchBlock(b, stats));
    for (const std::string& p : *payloads) {
      if (p.size() < sizeof(int64_t)) {
        return Status::Corruption("blob record too short");
      }
      int64_t sid;
      std::memcpy(&sid, p.data(), sizeof(sid));
      if (sid < lo || sid > hi) continue;
      std::string rec = p.substr(sizeof(sid));
      if (!fn(sid, rec)) return Status::OK();
    }
  }
  return Status::OK();
}

Status BlobStore::ScanRange(
    int64_t lo, int64_t hi,
    const std::function<bool(int64_t, const std::string&)>& fn,
    BlobReadStats* stats) const {
  return ScanRangeInterval(lo, hi, std::nullopt, fn, stats);
}

Status BlobStore::ScanAll(
    const std::function<bool(int64_t, const std::string&)>& fn,
    BlobReadStats* stats) const {
  return ScanRangeInterval(INT64_MIN, INT64_MAX, std::nullopt, fn, stats);
}

uint64_t BlobStore::CompressedBytes() const {
  return TotalCompressedBytes(blocks_);
}

uint64_t BlobStore::RawBytes() const {
  uint64_t total = 0;
  for (const CompressedBlock& b : blocks_) total += b.raw_bytes;
  return total;
}

uint64_t BlobStore::CountBlocksOverlapping(
    const std::optional<TimeInterval>& window) const {
  if (!window.has_value()) return meta_.size();
  uint64_t n = 0;
  for (const BlobBlockMeta& m : meta_) {
    // Same envelope test as ScanRangeInterval's zone-map prune.
    if (m.max_tend >= window->tstart.days() &&
        m.min_tstart <= window->tend.days()) {
      ++n;
    }
  }
  return n;
}

}  // namespace archis::compress
