#include "compress/block_zip.h"

#include <zlib.h>

#include <algorithm>
#include <cstring>

namespace archis::compress {
namespace {

/// Length-prefix-encodes records[first..last] into one payload buffer.
std::string PackRecords(const std::vector<std::string>& records,
                        size_t first, size_t last) {
  std::string out;
  for (size_t i = first; i <= last; ++i) {
    uint32_t len = static_cast<uint32_t>(records[i].size());
    out.append(reinterpret_cast<const char*>(&len), sizeof(len));
    out.append(records[i]);
  }
  return out;
}

}  // namespace

Result<std::string> ZlibCompress(std::string_view input, int level) {
  uLongf bound = compressBound(static_cast<uLong>(input.size()));
  std::string out(bound, '\0');
  int rc = compress2(reinterpret_cast<Bytef*>(out.data()), &bound,
                     reinterpret_cast<const Bytef*>(input.data()),
                     static_cast<uLong>(input.size()), level);
  if (rc != Z_OK) {
    return Status::Internal("zlib compress2 failed: " + std::to_string(rc));
  }
  out.resize(bound);
  return out;
}

Result<std::string> ZlibUncompress(std::string_view input,
                                   size_t expected_size_hint) {
  size_t capacity = expected_size_hint > 0 ? expected_size_hint
                                           : std::max<size_t>(
                                                 input.size() * 4, 4096);
  for (int attempt = 0; attempt < 8; ++attempt) {
    std::string out(capacity, '\0');
    uLongf dest_len = static_cast<uLongf>(capacity);
    int rc = uncompress(reinterpret_cast<Bytef*>(out.data()), &dest_len,
                        reinterpret_cast<const Bytef*>(input.data()),
                        static_cast<uLong>(input.size()));
    if (rc == Z_OK) {
      out.resize(dest_len);
      return out;
    }
    if (rc == Z_BUF_ERROR) {
      capacity *= 2;
      continue;
    }
    return Status::Corruption("zlib uncompress failed: " +
                              std::to_string(rc));
  }
  return Status::Corruption("zlib uncompress: output kept overflowing");
}

Result<std::vector<CompressedBlock>> BlockZipCompress(
    const std::vector<std::string>& records, BlockZipOptions opts) {
  std::vector<CompressedBlock> blocks;
  if (records.empty()) return blocks;

  // Step 3 of Algorithm 2: sample to estimate the compression factor f0 and
  // the average record size R.
  size_t sample_n = std::min(opts.sample_records, records.size());
  std::string sample = PackRecords(records, 0, sample_n - 1);
  ARCHIS_ASSIGN_OR_RETURN(std::string sample_z,
                          ZlibCompress(sample, opts.zlib_level));
  double f0 = sample_z.empty()
                  ? 2.0
                  : static_cast<double>(sample.size()) /
                        static_cast<double>(sample_z.size());
  double avg_record = static_cast<double>(sample.size()) /
                      static_cast<double>(sample_n);

  // Estimated records per block: N raw chars ~= block_size * f0.
  size_t per_block = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(opts.block_size) * f0 /
                             avg_record));

  size_t start = 0;
  while (start < records.size()) {
    size_t n = std::min(per_block, records.size() - start);
    // Grow/shrink n so the compressed size approaches block_size without
    // exceeding it (Algorithm 2's feedback loop), bounded to a few probes.
    std::string best_z;
    size_t best_n = 0;
    for (int probe = 0; probe < 6; ++probe) {
      std::string payload = PackRecords(records, start, start + n - 1);
      ARCHIS_ASSIGN_OR_RETURN(std::string z,
                              ZlibCompress(payload, opts.zlib_level));
      if (z.size() <= opts.block_size) {
        best_z = std::move(z);
        best_n = n;
        // Try to fit more records into the gap.
        size_t gap = opts.block_size - best_z.size();
        size_t extra = static_cast<size_t>(static_cast<double>(gap) * f0 /
                                           avg_record);
        if (extra < 1 || start + n >= records.size()) break;
        n = std::min(n + extra, records.size() - start);
        if (n == best_n) break;
      } else {
        // Too big: shed the estimated overflow.
        size_t over = z.size() - opts.block_size;
        size_t drop = std::max<size_t>(
            1, static_cast<size_t>(static_cast<double>(over) * f0 /
                                   avg_record));
        if (n <= drop) {
          if (best_n > 0) break;  // keep the last fitting probe
          n = std::max<size_t>(1, n / 2);
        } else {
          n -= drop;
        }
        if (n == 0) n = 1;
      }
    }
    if (best_n == 0) {
      // A single record can exceed the block size; emit it oversized rather
      // than failing (the reader handles variable block sizes).
      best_n = 1;
      std::string payload = PackRecords(records, start, start);
      ARCHIS_ASSIGN_OR_RETURN(best_z, ZlibCompress(payload, opts.zlib_level));
    }
    CompressedBlock block;
    block.first_record = start;
    block.last_record = start + best_n - 1;
    block.raw_bytes = 0;
    for (size_t i = start; i < start + best_n; ++i) {
      block.raw_bytes += records[i].size() + sizeof(uint32_t);
    }
    block.data = std::move(best_z);
    blocks.push_back(std::move(block));
    start += best_n;
  }
  return blocks;
}

Result<std::vector<std::string>> BlockZipUncompress(
    const CompressedBlock& block) {
  ARCHIS_ASSIGN_OR_RETURN(
      std::string payload,
      ZlibUncompress(block.data, static_cast<size_t>(block.raw_bytes)));
  std::vector<std::string> records;
  size_t pos = 0;
  while (pos < payload.size()) {
    if (pos + sizeof(uint32_t) > payload.size()) {
      return Status::Corruption("truncated record length in block");
    }
    uint32_t len;
    std::memcpy(&len, payload.data() + pos, sizeof(len));
    pos += sizeof(len);
    if (pos + len > payload.size()) {
      return Status::Corruption("truncated record in block");
    }
    records.emplace_back(payload.substr(pos, len));
    pos += len;
  }
  return records;
}

uint64_t TotalCompressedBytes(const std::vector<CompressedBlock>& blocks) {
  uint64_t total = 0;
  for (const CompressedBlock& b : blocks) total += b.data.size();
  return total;
}

}  // namespace archis::compress
