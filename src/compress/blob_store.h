// BlobStore: compressed blocks stored as BLOBs with per-block key ranges
// (the paper's `salary_blob(blockno, startsid, endsid, blockblob)` table,
// Section 8.2), enabling block-pruned reads for snapshot/slicing queries.
//
// Two read-path accelerations sit on top of the sid ranges:
//
//  * Temporal zone maps: each block also records the min tstart / max tend
//    over its records, so time-restricted scans skip blocks whose time
//    envelope cannot overlap the query even when their sid range does.
//  * A sharded LRU cache of decompressed blocks (opt-in via
//    set_cache_capacity), so hot blocks never pay BlockZIP inflation
//    twice. The cache is internally synchronised: concurrent readers are
//    safe once the store is built.
#ifndef ARCHIS_COMPRESS_BLOB_STORE_H_
#define ARCHIS_COMPRESS_BLOB_STORE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/interval.h"
#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "compress/block_zip.h"

namespace archis::compress {

/// Key metadata for one stored block: the sid (sort-key) range it covers
/// plus the temporal zone map over its records.
struct BlobBlockMeta {
  uint64_t blockno;
  int64_t start_sid;
  int64_t end_sid;
  uint64_t compressed_bytes;
  /// Zone map: day-encoded min tstart / max tend across the block's
  /// records. Blocks built without time metadata keep the open defaults,
  /// which makes the zone-map test pass for every query (never prunes).
  int64_t min_tstart = INT64_MIN;
  int64_t max_tend = INT64_MAX;
};

/// Statistics for a read operation.
struct BlobReadStats {
  uint64_t blocks_scanned = 0;
  uint64_t blocks_decompressed = 0;
  uint64_t bytes_decompressed = 0;
  uint64_t blocks_pruned_by_time = 0;  ///< skipped by the zone map alone
  uint64_t block_cache_hits = 0;
  uint64_t block_cache_misses = 0;
};

/// A table of compressed record blocks ordered by a monotone int64 sid.
///
/// Records must be appended in nondecreasing sid order (the archiver sorts
/// each segment by (segno, id) before compressing, which is what makes the
/// sid ranges selective).
class BlobStore {
 public:
  /// Builds the store from sid-sorted (sid, record) pairs. `times`, when
  /// non-empty, must parallel `records` and supplies the per-record
  /// [tstart, tend] used to derive each block's temporal zone map.
  Status Build(const std::vector<std::pair<int64_t, std::string>>& records,
               BlockZipOptions opts = {},
               const std::vector<TimeInterval>& times = {});

  /// Calls `fn(sid, record)` for every record with lo <= sid <= hi,
  /// decompressing only blocks whose range intersects [lo, hi].
  Status ScanRange(int64_t lo, int64_t hi,
                   const std::function<bool(int64_t, const std::string&)>& fn,
                   BlobReadStats* stats = nullptr) const;

  /// ScanRange additionally pruned by the temporal zone maps: blocks whose
  /// [min_tstart, max_tend] envelope cannot overlap `window` are skipped
  /// without decompression. Records inside surviving blocks are NOT
  /// time-filtered — every record of a surviving block whose sid is in
  /// range is yielded; row-level filtering stays with the caller.
  Status ScanRangeInterval(
      int64_t lo, int64_t hi, const std::optional<TimeInterval>& window,
      const std::function<bool(int64_t, const std::string&)>& fn,
      BlobReadStats* stats = nullptr) const;

  /// Full scan (decompresses everything).
  Status ScanAll(const std::function<bool(int64_t, const std::string&)>& fn,
                 BlobReadStats* stats = nullptr) const;

  /// Enables (bytes > 0) or disables (0) the decompressed-block LRU cache,
  /// dropping any cached blocks. Charged by raw (decompressed) bytes.
  /// Not thread-safe against concurrent scans; configure before reading.
  void set_cache_capacity(uint64_t bytes);
  uint64_t cache_capacity() const { return cache_capacity_; }

  /// Raw bytes currently held by the cache (across all shards).
  uint64_t CachedBytes() const;

  /// Number of blocks.
  size_t block_count() const { return blocks_.size(); }

  /// Blocks a window-restricted scan would have to decompress: the count
  /// of blocks whose temporal zone map overlaps `window` (all blocks when
  /// `window` is empty). Pure metadata walk — nothing is decompressed —
  /// which is what lets the planner cost a merge-scan without running it.
  uint64_t CountBlocksOverlapping(
      const std::optional<TimeInterval>& window) const;

  /// Metadata for each block (the paper's `*_segrange`-style index).
  const std::vector<BlobBlockMeta>& metadata() const { return meta_; }

  /// Total compressed bytes (the storage footprint measured in Figure 13).
  uint64_t CompressedBytes() const;

  /// Total uncompressed payload bytes.
  uint64_t RawBytes() const;

 private:
  using BlockPayloads = std::shared_ptr<const std::vector<std::string>>;

  /// The decompressed records of block `b`, via the cache when enabled.
  Result<BlockPayloads> FetchBlock(size_t b, BlobReadStats* stats) const;

  /// One lock-striped slice of the LRU cache (keyed by blockno).
  struct CacheShard {
    Mutex mu{LockRank::kBlobCacheShard};
    /// Most recently used at the front.
    std::list<uint64_t> lru ARCHIS_GUARDED_BY(mu);
    std::unordered_map<uint64_t,
                       std::pair<BlockPayloads, std::list<uint64_t>::iterator>>
        entries ARCHIS_GUARDED_BY(mu);
    uint64_t bytes ARCHIS_GUARDED_BY(mu) = 0;
  };
  static constexpr size_t kCacheShards = 8;

  std::vector<CompressedBlock> blocks_;
  std::vector<BlobBlockMeta> meta_;
  uint64_t cache_capacity_ = 0;  // 0 = cache disabled
  mutable std::array<CacheShard, kCacheShards> shards_;
};

}  // namespace archis::compress

#endif  // ARCHIS_COMPRESS_BLOB_STORE_H_
