// BlobStore: compressed blocks stored as BLOBs with per-block key ranges
// (the paper's `salary_blob(blockno, startsid, endsid, blockblob)` table,
// Section 8.2), enabling block-pruned reads for snapshot/slicing queries.
#ifndef ARCHIS_COMPRESS_BLOB_STORE_H_
#define ARCHIS_COMPRESS_BLOB_STORE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "compress/block_zip.h"

namespace archis::compress {

/// Key metadata for one stored block: the sid (sort-key) range it covers.
struct BlobBlockMeta {
  uint64_t blockno;
  int64_t start_sid;
  int64_t end_sid;
  uint64_t compressed_bytes;
};

/// Statistics for a read operation.
struct BlobReadStats {
  uint64_t blocks_scanned = 0;
  uint64_t blocks_decompressed = 0;
  uint64_t bytes_decompressed = 0;
};

/// A table of compressed record blocks ordered by a monotone int64 sid.
///
/// Records must be appended in nondecreasing sid order (the archiver sorts
/// each segment by (segno, id) before compressing, which is what makes the
/// sid ranges selective).
class BlobStore {
 public:
  /// Builds the store from sid-sorted (sid, record) pairs.
  Status Build(const std::vector<std::pair<int64_t, std::string>>& records,
               BlockZipOptions opts = {});

  /// Calls `fn(sid, record)` for every record with lo <= sid <= hi,
  /// decompressing only blocks whose range intersects [lo, hi].
  Status ScanRange(int64_t lo, int64_t hi,
                   const std::function<bool(int64_t, const std::string&)>& fn,
                   BlobReadStats* stats = nullptr) const;

  /// Full scan (decompresses everything).
  Status ScanAll(const std::function<bool(int64_t, const std::string&)>& fn,
                 BlobReadStats* stats = nullptr) const;

  /// Number of blocks.
  size_t block_count() const { return blocks_.size(); }

  /// Metadata for each block (the paper's `*_segrange`-style index).
  const std::vector<BlobBlockMeta>& metadata() const { return meta_; }

  /// Total compressed bytes (the storage footprint measured in Figure 13).
  uint64_t CompressedBytes() const;

  /// Total uncompressed payload bytes.
  uint64_t RawBytes() const;

 private:
  std::vector<CompressedBlock> blocks_;
  std::vector<BlobBlockMeta> meta_;
  std::vector<std::vector<int64_t>> sids_;  // per block, per record
};

}  // namespace archis::compress

#endif  // ARCHIS_COMPRESS_BLOB_STORE_H_
