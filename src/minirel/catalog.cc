#include "minirel/catalog.h"

namespace archis::minirel {

Result<Table*> Catalog::CreateTable(const std::string& name, Schema schema) {
  if (tables_.count(name) != 0) {
    return Status::AlreadyExists("table '" + name + "'");
  }
  auto table = std::make_unique<Table>(name, std::move(schema), pm_);
  Table* raw = table.get();
  tables_[name] = std::move(table);
  return raw;
}

Status Catalog::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("table '" + name + "'");
  }
  return Status::OK();
}

Result<Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table '" + name + "'");
  return it->second.get();
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(name) != 0;
}

Result<TableStats> Catalog::StatsFor(const std::string& name) const {
  ARCHIS_ASSIGN_OR_RETURN(Table * table, GetTable(name));
  return table->Stats();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

}  // namespace archis::minirel
