#include "minirel/value.h"

#include <cstring>

namespace archis::minirel {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kInt64: return "INT64";
    case DataType::kDouble: return "DOUBLE";
    case DataType::kString: return "STRING";
    case DataType::kDate: return "DATE";
  }
  return "UNKNOWN";
}

Result<double> Value::AsNumeric() const {
  switch (type()) {
    case DataType::kInt64: return static_cast<double>(AsInt());
    case DataType::kDouble: return AsDouble();
    default:
      return Status::TypeError(std::string("not numeric: ") +
                               DataTypeName(type()));
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kInt64: return std::to_string(AsInt());
    case DataType::kDouble: {
      std::string s = std::to_string(AsDouble());
      return s;
    }
    case DataType::kString: return AsString();
    case DataType::kDate: return AsDate().ToString();
  }
  return "?";
}

bool Value::operator<(const Value& other) const {
  if (type() != other.type()) return type() < other.type();
  return v_ < other.v_;
}

namespace {

template <typename T>
void AppendRaw(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool ReadRaw(std::string_view data, size_t* pos, T* v) {
  if (*pos + sizeof(T) > data.size()) return false;
  std::memcpy(v, data.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

}  // namespace

void Value::EncodeTo(std::string* out) const {
  switch (type()) {
    case DataType::kInt64:
      AppendRaw(out, AsInt());
      break;
    case DataType::kDouble:
      AppendRaw(out, AsDouble());
      break;
    case DataType::kString: {
      const std::string& s = AsString();
      AppendRaw(out, static_cast<uint32_t>(s.size()));
      out->append(s);
      break;
    }
    case DataType::kDate:
      AppendRaw(out, AsDate().days());
      break;
  }
}

Result<Value> Value::DecodeFrom(DataType t, std::string_view data,
                                size_t* pos) {
  switch (t) {
    case DataType::kInt64: {
      int64_t v;
      if (!ReadRaw(data, pos, &v)) return Status::Corruption("short int64");
      return Value(v);
    }
    case DataType::kDouble: {
      double v;
      if (!ReadRaw(data, pos, &v)) return Status::Corruption("short double");
      return Value(v);
    }
    case DataType::kString: {
      uint32_t len;
      if (!ReadRaw(data, pos, &len)) return Status::Corruption("short strlen");
      if (*pos + len > data.size()) return Status::Corruption("short string");
      Value v(std::string(data.substr(*pos, len)));
      *pos += len;
      return v;
    }
    case DataType::kDate: {
      int64_t days;
      if (!ReadRaw(data, pos, &days)) return Status::Corruption("short date");
      return Value(Date(days));
    }
  }
  return Status::Corruption("bad type tag");
}

}  // namespace archis::minirel
