#include "minirel/database.h"

namespace archis::minirel {

DatabaseStats Database::Stats() const {
  DatabaseStats stats;
  for (const std::string& name : catalog_.TableNames()) {
    auto table = catalog_.GetTable(name);
    if (!table.ok()) continue;
    stats.data_bytes += (*table)->DataBytes();
    stats.index_bytes += (*table)->IndexBytes();
    stats.page_count += (*table)->heap().pages().size();
  }
  return stats;
}

}  // namespace archis::minirel
