#include "minirel/database.h"

namespace archis::minirel {

DatabaseStats Database::Stats() const {
  DatabaseStats stats;
  for (const std::string& name : catalog_.TableNames()) {
    auto ts = catalog_.StatsFor(name);
    if (!ts.ok()) continue;
    stats.data_bytes += ts->data_bytes;
    stats.index_bytes += ts->index_bytes;
    stats.page_count += ts->pages;
  }
  return stats;
}

}  // namespace archis::minirel
