// Catalog: name -> Table mapping for one database.
#ifndef ARCHIS_MINIREL_CATALOG_H_
#define ARCHIS_MINIREL_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "minirel/table.h"

namespace archis::minirel {

/// Owns the tables of a database and resolves them by name.
class Catalog {
 public:
  explicit Catalog(storage::PageManager* pm) : pm_(pm) {}

  /// Creates an empty table; AlreadyExists if the name is taken.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// Drops a table; its pages remain allocated in the PageManager.
  Status DropTable(const std::string& name);

  /// The table named `name`, or NotFound.
  Result<Table*> GetTable(const std::string& name) const;

  /// Whether `name` exists.
  bool HasTable(const std::string& name) const;

  /// Names of all tables, sorted.
  std::vector<std::string> TableNames() const;

  /// Metadata statistics for the table named `name`, or NotFound. The
  /// statistics-catalog entry point for cost-based planning.
  Result<TableStats> StatsFor(const std::string& name) const;

 private:
  storage::PageManager* pm_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace archis::minirel

#endif  // ARCHIS_MINIREL_CATALOG_H_
