#include "minirel/table.h"

namespace archis::minirel {

Result<storage::RecordId> Table::Insert(const Tuple& t) {
  ARCHIS_ASSIGN_OR_RETURN(std::string bytes, t.Encode(schema_));
  ARCHIS_ASSIGN_OR_RETURN(storage::RecordId rid, heap_.Append(bytes));
  for (auto& idx : indexes_) {
    idx->tree.Insert(KeyFor(*idx, t), rid);
  }
  return rid;
}

Result<Tuple> Table::Read(const storage::RecordId& rid) const {
  ARCHIS_ASSIGN_OR_RETURN(std::string bytes, heap_.Read(rid));
  return Tuple::Decode(schema_, bytes);
}

Status Table::Delete(const storage::RecordId& rid) {
  ARCHIS_ASSIGN_OR_RETURN(Tuple t, Read(rid));
  ARCHIS_RETURN_NOT_OK(heap_.Delete(rid));
  for (auto& idx : indexes_) {
    idx->tree.Erase(KeyFor(*idx, t), rid);
  }
  return Status::OK();
}

Status Table::Update(storage::RecordId* rid, const Tuple& t) {
  ARCHIS_ASSIGN_OR_RETURN(Tuple old, Read(*rid));
  ARCHIS_ASSIGN_OR_RETURN(std::string bytes, t.Encode(schema_));
  storage::RecordId old_rid = *rid;
  ARCHIS_RETURN_NOT_OK(heap_.Update(rid, bytes));
  for (auto& idx : indexes_) {
    IndexKey old_key = KeyFor(*idx, old);
    IndexKey new_key = KeyFor(*idx, t);
    if (old_key != new_key || old_rid != *rid) {
      idx->tree.Erase(old_key, old_rid);
      idx->tree.Insert(new_key, *rid);
    }
  }
  return Status::OK();
}

Status Table::CreateIndex(const std::string& index_name,
                          const std::vector<std::string>& column_names) {
  if (GetIndex(index_name) != nullptr) {
    return Status::AlreadyExists("index '" + index_name + "'");
  }
  auto idx = std::make_unique<TableIndex>();
  idx->name = index_name;
  for (const std::string& col : column_names) {
    ARCHIS_ASSIGN_OR_RETURN(size_t pos, schema_.ColumnIndex(col));
    idx->columns.push_back(pos);
  }
  // Back-fill; a corrupt row fails index creation instead of silently
  // leaving the index incomplete.
  ARCHIS_RETURN_NOT_OK(Scan([&](const storage::RecordId& rid, const Tuple& t) {
    idx->tree.Insert(KeyFor(*idx, t), rid);
    return true;
  }));
  indexes_.push_back(std::move(idx));
  return Status::OK();
}

const TableIndex* Table::GetIndex(const std::string& index_name) const {
  for (const auto& idx : indexes_) {
    if (idx->name == index_name) return idx.get();
  }
  return nullptr;
}

const TableIndex* Table::FindIndexOn(const std::string& column) const {
  auto pos = schema_.ColumnIndex(column);
  if (!pos.ok()) return nullptr;
  for (const auto& idx : indexes_) {
    if (!idx->columns.empty() && idx->columns[0] == *pos) return idx.get();
  }
  return nullptr;
}

Status Table::Scan(const std::function<bool(const storage::RecordId&,
                                            const Tuple&)>& fn) const {
  Status failure = Status::OK();
  heap_.Scan([&](const storage::RecordId& rid, std::string_view bytes) {
    auto t = Tuple::Decode(schema_, bytes);
    if (!t.ok()) {
      failure = t.status();
      return false;  // abort: a vanishing row is silent data loss
    }
    return fn(rid, *t);
  });
  return failure;
}

Result<std::vector<Tuple>> Table::Select(const Predicate& pred) const {
  std::vector<Tuple> out;
  ARCHIS_RETURN_NOT_OK(Scan([&](const storage::RecordId&, const Tuple& t) {
    if (pred.Matches(t)) out.push_back(t);
    return true;
  }));
  return out;
}

Status Table::IndexScan(const TableIndex& index, const IndexKey& lo,
                        const IndexKey& hi,
                        const std::function<bool(const storage::RecordId&,
                                                 const Tuple&)>& fn) const {
  Status failure = Status::OK();
  index.tree.ScanRange(lo, hi,
                       [&](const IndexKey&, const storage::RecordId& rid) {
    auto t = Read(rid);
    if (!t.ok()) {
      failure = t.status();
      return false;
    }
    return fn(rid, *t);
  });
  return failure;
}

uint64_t Table::IndexBytes() const {
  uint64_t total = 0;
  for (const auto& idx : indexes_) {
    // Keys are vectors of values; approximate each entry at 24 bytes of key
    // payload plus tree overhead.
    total += idx->tree.size() * 32;
  }
  return total;
}

IndexKey Table::KeyFor(const TableIndex& index, const Tuple& t) const {
  IndexKey key;
  key.reserve(index.columns.size());
  for (size_t col : index.columns) key.push_back(t.at(col));
  return key;
}

}  // namespace archis::minirel
