// Tables: a schema, a heap file, and any number of B+-tree indexes.
#ifndef ARCHIS_MINIREL_TABLE_H_
#define ARCHIS_MINIREL_TABLE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "minirel/predicate.h"
#include "storage/bptree.h"
#include "storage/heap_file.h"

namespace archis::minirel {

/// Composite index key: values of the indexed columns, compared
/// lexicographically.
using IndexKey = std::vector<Value>;

/// Planner-facing statistics of one table, derived from heap and index
/// metadata alone — cheap enough to consult on every query plan.
struct TableStats {
  uint64_t pages = 0;       ///< allocated heap pages
  uint64_t data_bytes = 0;  ///< heap bytes (pages * page size)
  uint64_t index_bytes = 0;
};

/// A secondary index over a subset of a table's columns.
struct TableIndex {
  std::string name;
  std::vector<size_t> columns;  // indexed column positions, in key order
  storage::BPlusTree<IndexKey, storage::RecordId> tree;
};

/// A stored relation.
class Table {
 public:
  Table(std::string name, Schema schema, storage::PageManager* pm)
      : name_(std::move(name)), schema_(std::move(schema)), heap_(pm) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Inserts `t`, maintaining all indexes. Returns the record id.
  Result<storage::RecordId> Insert(const Tuple& t);

  /// Reads the tuple at `rid`.
  Result<Tuple> Read(const storage::RecordId& rid) const;

  /// Deletes the tuple at `rid`, maintaining indexes.
  Status Delete(const storage::RecordId& rid);

  /// Replaces the tuple at `rid` with `t`; the tuple may move, in which
  /// case the new record id is written back through `rid`.
  Status Update(storage::RecordId* rid, const Tuple& t);

  /// Creates a B+-tree index named `index_name` over `column_names`,
  /// back-filling from existing rows.
  Status CreateIndex(const std::string& index_name,
                     const std::vector<std::string>& column_names);

  /// The index named `index_name`, or nullptr.
  const TableIndex* GetIndex(const std::string& index_name) const;

  /// The first index whose leading column is `column`, or nullptr.
  const TableIndex* FindIndexOn(const std::string& column) const;

  /// Calls `fn(rid, tuple)` for every live row; stop early on false.
  /// A row that fails to decode aborts the scan with Corruption — silently
  /// skipping it would make data loss invisible.
  Status Scan(const std::function<bool(const storage::RecordId&,
                                       const Tuple&)>& fn) const;

  /// Rows matching `pred` (full scan).
  Result<std::vector<Tuple>> Select(const Predicate& pred) const;

  /// Calls `fn` for rows whose index key is in [lo, hi] on `index`.
  /// An index entry whose row cannot be read aborts with that error.
  Status IndexScan(const TableIndex& index, const IndexKey& lo,
                   const IndexKey& hi,
                   const std::function<bool(const storage::RecordId&,
                                            const Tuple&)>& fn) const;

  /// Live row count (scan).
  uint64_t RowCount() const { return heap_.CountLive(); }

  /// Data bytes (heap pages only).
  uint64_t DataBytes() const { return heap_.SizeBytes(); }

  /// Approximate index bytes across all indexes.
  uint64_t IndexBytes() const;

  /// Heap/index metadata statistics (no row scan).
  TableStats Stats() const {
    return {heap_.pages().size(), heap_.SizeBytes(), IndexBytes()};
  }

  storage::HeapFile& heap() { return heap_; }
  const storage::HeapFile& heap() const { return heap_; }

 private:
  IndexKey KeyFor(const TableIndex& index, const Tuple& t) const;

  std::string name_;
  Schema schema_;
  storage::HeapFile heap_;
  std::vector<std::unique_ptr<TableIndex>> indexes_;
};

}  // namespace archis::minirel

#endif  // ARCHIS_MINIREL_TABLE_H_
