// Tuples and their binary codec for heap-file storage.
#ifndef ARCHIS_MINIREL_TUPLE_H_
#define ARCHIS_MINIREL_TUPLE_H_

#include <initializer_list>
#include <vector>

#include "minirel/schema.h"

namespace archis::minirel {

/// A row: one Value per schema column.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  size_t size() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }
  Value& at(size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  /// Serializes per `schema` column order into a byte string.
  Result<std::string> Encode(const Schema& schema) const;

  /// Parses a byte string produced by Encode with the same schema.
  static Result<Tuple> Decode(const Schema& schema, std::string_view data);

  /// "(v1, v2, ...)" for debugging.
  std::string ToString() const;

  bool operator==(const Tuple& other) const = default;

 private:
  std::vector<Value> values_;
};

}  // namespace archis::minirel

#endif  // ARCHIS_MINIREL_TUPLE_H_
