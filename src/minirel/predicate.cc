#include "minirel/predicate.h"

namespace archis::minirel {

bool Compare(const Value& lhs, CompareOp op, const Value& rhs) {
  switch (op) {
    case CompareOp::kEq: return lhs == rhs;
    case CompareOp::kNe: return lhs != rhs;
    case CompareOp::kLt: return lhs < rhs;
    case CompareOp::kLe: return lhs <= rhs;
    case CompareOp::kGt: return lhs > rhs;
    case CompareOp::kGe: return lhs >= rhs;
  }
  return false;
}

Result<CompareOp> ParseCompareOp(const std::string& text) {
  if (text == "=" || text == "==") return CompareOp::kEq;
  if (text == "!=" || text == "<>") return CompareOp::kNe;
  if (text == "<") return CompareOp::kLt;
  if (text == "<=") return CompareOp::kLe;
  if (text == ">") return CompareOp::kGt;
  if (text == ">=") return CompareOp::kGe;
  return Status::ParseError("unknown comparison operator '" + text + "'");
}

Predicate& Predicate::WhereConst(size_t col, CompareOp op, Value constant) {
  const_terms_.push_back({col, op, std::move(constant)});
  return *this;
}

Predicate& Predicate::WhereCols(size_t lhs_col, CompareOp op,
                                size_t rhs_col) {
  col_terms_.push_back({lhs_col, op, rhs_col});
  return *this;
}

Predicate& Predicate::WhereFn(std::function<bool(const Tuple&)> fn) {
  fn_terms_.push_back(std::move(fn));
  return *this;
}

bool Predicate::Matches(const Tuple& t) const {
  for (const ConstTerm& term : const_terms_) {
    if (!Compare(t.at(term.col), term.op, term.constant)) return false;
  }
  for (const ColTerm& term : col_terms_) {
    if (!Compare(t.at(term.lhs), term.op, t.at(term.rhs))) return false;
  }
  for (const auto& fn : fn_terms_) {
    if (!fn(t)) return false;
  }
  return true;
}

}  // namespace archis::minirel
