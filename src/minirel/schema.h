// Relation schemas: ordered, named, typed columns.
#ifndef ARCHIS_MINIREL_SCHEMA_H_
#define ARCHIS_MINIREL_SCHEMA_H_

#include <string>
#include <vector>

#include "minirel/value.h"

namespace archis::minirel {

/// A column definition.
struct Column {
  std::string name;
  DataType type;
};

/// An ordered list of columns with name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column named `name`, or NotFound.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Whether a column named `name` exists.
  bool HasColumn(const std::string& name) const;

  /// A schema concatenating this schema's columns with `other`'s, columns
  /// from `other` prefixed when names collide (used by joins).
  Schema Concat(const Schema& other, const std::string& prefix) const;

  /// "name TYPE, name TYPE, ..." for debugging.
  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace archis::minirel

#endif  // ARCHIS_MINIREL_SCHEMA_H_
