#include "minirel/schema.h"

namespace archis::minirel {

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column named '" + name + "'");
}

bool Schema::HasColumn(const std::string& name) const {
  return ColumnIndex(name).ok();
}

Schema Schema::Concat(const Schema& other, const std::string& prefix) const {
  std::vector<Column> cols = columns_;
  for (const Column& c : other.columns()) {
    std::string name = c.name;
    if (HasColumn(name)) name = prefix + "." + name;
    cols.push_back({name, c.type});
  }
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ' ';
    out += DataTypeName(columns_[i].type);
  }
  return out;
}

}  // namespace archis::minirel
