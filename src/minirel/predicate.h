// Row predicates: column-vs-constant and column-vs-column comparisons
// composed with AND, plus arbitrary callables for temporal UDF conditions.
#ifndef ARCHIS_MINIREL_PREDICATE_H_
#define ARCHIS_MINIREL_PREDICATE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "minirel/tuple.h"

namespace archis::minirel {

/// Comparison operators.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Applies `op` to two values.
bool Compare(const Value& lhs, CompareOp op, const Value& rhs);

/// Parses "=", "!=", "<", "<=", ">", ">=".
Result<CompareOp> ParseCompareOp(const std::string& text);

/// A conjunctive predicate over tuples of a fixed schema.
///
/// Terms are either `column op constant`, `column op column`, or an opaque
/// callable (used by translated temporal UDFs such as toverlaps).
class Predicate {
 public:
  /// The always-true predicate.
  Predicate() = default;

  /// Adds `schema[col] op constant`.
  Predicate& WhereConst(size_t col, CompareOp op, Value constant);

  /// Adds `schema[lhs_col] op schema[rhs_col]`.
  Predicate& WhereCols(size_t lhs_col, CompareOp op, size_t rhs_col);

  /// Adds an arbitrary boolean function of the tuple.
  Predicate& WhereFn(std::function<bool(const Tuple&)> fn);

  /// Evaluates against `t`.
  bool Matches(const Tuple& t) const;

  /// Number of terms.
  size_t size() const {
    return const_terms_.size() + col_terms_.size() + fn_terms_.size();
  }

 private:
  struct ConstTerm {
    size_t col;
    CompareOp op;
    Value constant;
  };
  struct ColTerm {
    size_t lhs;
    CompareOp op;
    size_t rhs;
  };

  std::vector<ConstTerm> const_terms_;
  std::vector<ColTerm> col_terms_;
  std::vector<std::function<bool(const Tuple&)>> fn_terms_;
};

}  // namespace archis::minirel

#endif  // ARCHIS_MINIREL_PREDICATE_H_
