// Pull-based physical operators over minirel tables.
//
// The translated SQL/XML queries are executed as trees of these operators:
// SeqScan / IndexScan -> Filter -> SortMergeJoin (H-tables are id-sorted,
// Section 5.3: "these joins execute very fast (in linear time) since every
// table is already sorted on its id attribute") -> Aggregate / Project.
#ifndef ARCHIS_MINIREL_EXECUTOR_H_
#define ARCHIS_MINIREL_EXECUTOR_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "minirel/table.h"

namespace archis::minirel {

/// Iterator interface: Next() yields rows until nullopt.
class RowIterator {
 public:
  virtual ~RowIterator() = default;

  /// Schema of the produced rows.
  virtual const Schema& schema() const = 0;

  /// The next row, or nullopt at end of stream.
  virtual std::optional<Tuple> Next() = 0;
};

using RowIteratorPtr = std::unique_ptr<RowIterator>;

/// Full scan of `table`, filtered by `pred`. Fails on a corrupt row
/// rather than silently dropping it from the result.
Result<RowIteratorPtr> MakeSeqScan(const Table* table, Predicate pred = {});

/// Scan restricted to the given heap pages (segment pruning), filtered.
Result<RowIteratorPtr> MakePageScan(const Table* table,
                                    std::vector<storage::PageId> pages,
                                    Predicate pred = {});

/// Index range scan on `index` for keys in [lo, hi], filtered by `pred`.
Result<RowIteratorPtr> MakeIndexScan(const Table* table,
                                     const TableIndex* index, IndexKey lo,
                                     IndexKey hi, Predicate pred = {});

/// Scan of an in-memory row vector (used for intermediate results).
RowIteratorPtr MakeVectorScan(Schema schema, std::vector<Tuple> rows);

/// Filters `input` by `pred`.
RowIteratorPtr MakeFilter(RowIteratorPtr input, Predicate pred);

/// Keeps only `columns` (by position), in the given order.
RowIteratorPtr MakeProject(RowIteratorPtr input, std::vector<size_t> columns);

/// Sorts the input by the given columns ascending (materialising).
RowIteratorPtr MakeSort(RowIteratorPtr input, std::vector<size_t> sort_cols);

/// Merge-joins two inputs on single-column equality. Both inputs MUST be
/// sorted on their join column; output is left ++ right columns (right
/// column names prefixed with `right_prefix` on collision).
RowIteratorPtr MakeSortMergeJoin(RowIteratorPtr left, size_t left_col,
                                 RowIteratorPtr right, size_t right_col,
                                 const std::string& right_prefix);

/// Hash join on single-column equality (no sortedness requirement); the
/// ablation baseline for the id-sorted merge join.
RowIteratorPtr MakeHashJoin(RowIteratorPtr left, size_t left_col,
                            RowIteratorPtr right, size_t right_col,
                            const std::string& right_prefix);

/// Textbook output-cardinality estimate for the equi-joins above:
/// |L join R| ~= |L| * |R| / max(V(L, col), V(R, col)), assuming
/// containment of value sets. Distinct counts < 1 are clamped to 1; an
/// empty input estimates 0. Used by the cost-based planner to order
/// multi-variable temporal joins.
double EstimateEquiJoinRows(double left_rows, double right_rows,
                            double left_distinct, double right_distinct);

/// Aggregate functions.
enum class AggFn { kCount, kSum, kAvg, kMin, kMax };

/// One aggregate to compute: fn over column `col` (ignored for kCount),
/// output column named `output_name`.
struct AggSpec {
  AggFn fn;
  size_t col;
  std::string output_name;
};

/// Grouped aggregation: groups by `group_cols` (in order), emits group key
/// columns followed by one column per AggSpec. Materialising.
RowIteratorPtr MakeAggregate(RowIteratorPtr input,
                             std::vector<size_t> group_cols,
                             std::vector<AggSpec> aggs);

/// Drains an iterator into a vector.
std::vector<Tuple> Collect(RowIterator* it);

}  // namespace archis::minirel

#endif  // ARCHIS_MINIREL_EXECUTOR_H_
