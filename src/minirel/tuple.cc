#include "minirel/tuple.h"

namespace archis::minirel {

Result<std::string> Tuple::Encode(const Schema& schema) const {
  if (values_.size() != schema.num_columns()) {
    return Status::InvalidArgument("tuple arity does not match schema");
  }
  std::string out;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (values_[i].type() != schema.column(i).type) {
      return Status::TypeError("column '" + schema.column(i).name +
                               "' expects " +
                               DataTypeName(schema.column(i).type) +
                               ", got " + DataTypeName(values_[i].type()));
    }
    values_[i].EncodeTo(&out);
  }
  return out;
}

Result<Tuple> Tuple::Decode(const Schema& schema, std::string_view data) {
  std::vector<Value> values;
  values.reserve(schema.num_columns());
  size_t pos = 0;
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    ARCHIS_ASSIGN_OR_RETURN(
        Value v, Value::DecodeFrom(schema.column(i).type, data, &pos));
    values.push_back(std::move(v));
  }
  if (pos != data.size()) {
    return Status::Corruption("trailing bytes after tuple");
  }
  return Tuple(std::move(values));
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace archis::minirel
