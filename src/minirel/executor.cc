#include "minirel/executor.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace archis::minirel {

namespace {

/// Shared base for operators that materialise their output up front.
class MaterializedIterator : public RowIterator {
 public:
  MaterializedIterator(Schema schema, std::vector<Tuple> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const Schema& schema() const override { return schema_; }

  std::optional<Tuple> Next() override {
    if (pos_ >= rows_.size()) return std::nullopt;
    return rows_[pos_++];
  }

 private:
  Schema schema_;
  std::vector<Tuple> rows_;
  size_t pos_ = 0;
};

}  // namespace

// -- Implementation note: the scan operators materialise through the
// Table/HeapFile callback API rather than re-implementing page walking.

Result<RowIteratorPtr> MakePageScan(const Table* table,
                                    std::vector<storage::PageId> pages,
                                    Predicate pred) {
  std::vector<Tuple> rows;
  Status failure = Status::OK();
  table->heap().ScanPages(
      pages, [&](const storage::RecordId&, std::string_view bytes) {
        auto t = Tuple::Decode(table->schema(), bytes);
        if (!t.ok()) {
          failure = t.status();
          return false;
        }
        if (pred.Matches(*t)) rows.push_back(std::move(*t));
        return true;
      });
  ARCHIS_RETURN_NOT_OK(failure);
  return RowIteratorPtr(std::make_unique<MaterializedIterator>(
      table->schema(), std::move(rows)));
}

Result<RowIteratorPtr> MakeSeqScan(const Table* table, Predicate pred) {
  return MakePageScan(table, table->heap().pages(), std::move(pred));
}

Result<RowIteratorPtr> MakeIndexScan(const Table* table,
                                     const TableIndex* index, IndexKey lo,
                                     IndexKey hi, Predicate pred) {
  std::vector<Tuple> rows;
  ARCHIS_RETURN_NOT_OK(table->IndexScan(
      *index, lo, hi, [&](const storage::RecordId&, const Tuple& t) {
        if (pred.Matches(t)) rows.push_back(t);
        return true;
      }));
  return RowIteratorPtr(std::make_unique<MaterializedIterator>(
      table->schema(), std::move(rows)));
}

RowIteratorPtr MakeVectorScan(Schema schema, std::vector<Tuple> rows) {
  return std::make_unique<MaterializedIterator>(std::move(schema),
                                                std::move(rows));
}

RowIteratorPtr MakeFilter(RowIteratorPtr input, Predicate pred) {
  Schema schema = input->schema();
  std::vector<Tuple> rows;
  while (auto t = input->Next()) {
    if (pred.Matches(*t)) rows.push_back(std::move(*t));
  }
  return std::make_unique<MaterializedIterator>(std::move(schema),
                                                std::move(rows));
}

RowIteratorPtr MakeProject(RowIteratorPtr input,
                           std::vector<size_t> columns) {
  std::vector<Column> cols;
  for (size_t c : columns) cols.push_back(input->schema().column(c));
  Schema schema{std::move(cols)};
  std::vector<Tuple> rows;
  while (auto t = input->Next()) {
    Tuple out;
    for (size_t c : columns) out.Append(t->at(c));
    rows.push_back(std::move(out));
  }
  return std::make_unique<MaterializedIterator>(std::move(schema),
                                                std::move(rows));
}

RowIteratorPtr MakeSort(RowIteratorPtr input,
                        std::vector<size_t> sort_cols) {
  Schema schema = input->schema();
  std::vector<Tuple> rows;
  while (auto t = input->Next()) rows.push_back(std::move(*t));
  std::stable_sort(rows.begin(), rows.end(),
                   [&sort_cols](const Tuple& a, const Tuple& b) {
    for (size_t c : sort_cols) {
      if (a.at(c) < b.at(c)) return true;
      if (b.at(c) < a.at(c)) return false;
    }
    return false;
  });
  return std::make_unique<MaterializedIterator>(std::move(schema),
                                                std::move(rows));
}

namespace {

Tuple ConcatTuples(const Tuple& a, const Tuple& b) {
  std::vector<Value> values = a.values();
  values.insert(values.end(), b.values().begin(), b.values().end());
  return Tuple(std::move(values));
}

}  // namespace

RowIteratorPtr MakeSortMergeJoin(RowIteratorPtr left, size_t left_col,
                                 RowIteratorPtr right, size_t right_col,
                                 const std::string& right_prefix) {
  Schema schema = left->schema().Concat(right->schema(), right_prefix);
  std::vector<Tuple> lrows, rrows, out;
  while (auto t = left->Next()) lrows.push_back(std::move(*t));
  while (auto t = right->Next()) rrows.push_back(std::move(*t));

  size_t li = 0, ri = 0;
  while (li < lrows.size() && ri < rrows.size()) {
    const Value& lv = lrows[li].at(left_col);
    const Value& rv = rrows[ri].at(right_col);
    if (lv < rv) {
      ++li;
    } else if (rv < lv) {
      ++ri;
    } else {
      // Emit the cross product of the equal runs.
      size_t lend = li;
      while (lend < lrows.size() && lrows[lend].at(left_col) == lv) ++lend;
      size_t rend = ri;
      while (rend < rrows.size() && rrows[rend].at(right_col) == rv) ++rend;
      for (size_t i = li; i < lend; ++i) {
        for (size_t j = ri; j < rend; ++j) {
          out.push_back(ConcatTuples(lrows[i], rrows[j]));
        }
      }
      li = lend;
      ri = rend;
    }
  }
  return std::make_unique<MaterializedIterator>(std::move(schema),
                                                std::move(out));
}

RowIteratorPtr MakeHashJoin(RowIteratorPtr left, size_t left_col,
                            RowIteratorPtr right, size_t right_col,
                            const std::string& right_prefix) {
  Schema schema = left->schema().Concat(right->schema(), right_prefix);
  // Build on the right input, probe with the left.
  std::multimap<std::string, Tuple> build;
  while (auto t = right->Next()) {
    std::string key;
    t->at(right_col).EncodeTo(&key);
    build.emplace(std::move(key), std::move(*t));
  }
  std::vector<Tuple> out;
  while (auto t = left->Next()) {
    std::string key;
    t->at(left_col).EncodeTo(&key);
    auto [lo, hi] = build.equal_range(key);
    for (auto it = lo; it != hi; ++it) {
      out.push_back(ConcatTuples(*t, it->second));
    }
  }
  return std::make_unique<MaterializedIterator>(std::move(schema),
                                                std::move(out));
}

namespace {

struct AggState {
  int64_t count = 0;
  double sum = 0;
  std::optional<Value> min;
  std::optional<Value> max;

  void Add(const Value& v) {
    ++count;
    if (auto d = v.AsNumeric(); d.ok()) sum += *d;
    if (!min || v < *min) min = v;
    if (!max || *max < v) max = v;
  }

  Value Finish(AggFn fn) const {
    switch (fn) {
      case AggFn::kCount: return Value(count);
      case AggFn::kSum: return Value(sum);
      case AggFn::kAvg: return Value(count == 0 ? 0.0 : sum / count);
      case AggFn::kMin: return min.value_or(Value(int64_t{0}));
      case AggFn::kMax: return max.value_or(Value(int64_t{0}));
    }
    return Value(int64_t{0});
  }
};

}  // namespace

RowIteratorPtr MakeAggregate(RowIteratorPtr input,
                             std::vector<size_t> group_cols,
                             std::vector<AggSpec> aggs) {
  std::vector<Column> cols;
  for (size_t c : group_cols) cols.push_back(input->schema().column(c));
  for (const AggSpec& a : aggs) {
    DataType t = (a.fn == AggFn::kCount) ? DataType::kInt64
                 : (a.fn == AggFn::kMin || a.fn == AggFn::kMax)
                     ? input->schema().column(a.col).type
                     : DataType::kDouble;
    cols.push_back({a.output_name, t});
  }
  Schema schema{std::move(cols)};

  // Group states keyed by the encoded group key; keys kept sorted so output
  // order is deterministic.
  std::map<std::string, std::pair<Tuple, std::vector<AggState>>> groups;
  while (auto t = input->Next()) {
    std::string key;
    Tuple key_tuple;
    for (size_t c : group_cols) {
      t->at(c).EncodeTo(&key);
      key_tuple.Append(t->at(c));
    }
    auto [it, inserted] = groups.try_emplace(
        std::move(key), std::move(key_tuple),
        std::vector<AggState>(aggs.size()));
    for (size_t i = 0; i < aggs.size(); ++i) {
      if (aggs[i].fn == AggFn::kCount) {
        ++it->second.second[i].count;
      } else {
        it->second.second[i].Add(t->at(aggs[i].col));
      }
    }
  }

  std::vector<Tuple> rows;
  rows.reserve(groups.size());
  for (auto& [key, entry] : groups) {
    Tuple out = entry.first;
    for (size_t i = 0; i < aggs.size(); ++i) {
      out.Append(entry.second[i].Finish(aggs[i].fn));
    }
    rows.push_back(std::move(out));
  }
  return std::make_unique<MaterializedIterator>(std::move(schema),
                                                std::move(rows));
}

std::vector<Tuple> Collect(RowIterator* it) {
  std::vector<Tuple> rows;
  while (auto t = it->Next()) rows.push_back(std::move(*t));
  return rows;
}

double EstimateEquiJoinRows(double left_rows, double right_rows,
                            double left_distinct, double right_distinct) {
  if (left_rows <= 0.0 || right_rows <= 0.0) return 0.0;
  const double d = std::max({left_distinct, right_distinct, 1.0});
  return left_rows * right_rows / d;
}

}  // namespace archis::minirel
