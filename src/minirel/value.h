// Typed column values for the minirel engine.
#ifndef ARCHIS_MINIREL_VALUE_H_
#define ARCHIS_MINIREL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/date.h"
#include "common/status.h"

namespace archis::minirel {

/// Column data types supported by minirel. DATE is first-class because
/// every H-table carries tstart/tend columns.
enum class DataType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
  kDate = 3,
};

/// Name of a DataType ("INT64", ...).
const char* DataTypeName(DataType t);

/// A single typed value.
///
/// Values of the same type order naturally; values of different types order
/// by type tag (needed so composite index keys are totally ordered).
class Value {
 public:
  Value() : v_(int64_t{0}) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(const char* s) : v_(std::string(s)) {}
  explicit Value(Date d) : v_(d) {}

  DataType type() const {
    return static_cast<DataType>(v_.index());
  }

  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }
  Date AsDate() const { return std::get<Date>(v_); }

  /// Numeric view: int64 and double coerce; anything else is a TypeError.
  Result<double> AsNumeric() const;

  /// Render for debugging / CSV output.
  std::string ToString() const;

  bool operator==(const Value& other) const { return v_ == other.v_; }
  bool operator<(const Value& other) const;
  bool operator<=(const Value& other) const { return !(other < *this); }
  bool operator>(const Value& other) const { return other < *this; }
  bool operator>=(const Value& other) const { return !(*this < other); }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Appends a compact binary encoding to `out`.
  void EncodeTo(std::string* out) const;

  /// Decodes a value of type `t` from `data` at `*pos`, advancing `*pos`.
  static Result<Value> DecodeFrom(DataType t, std::string_view data,
                                  size_t* pos);

 private:
  std::variant<int64_t, double, std::string, Date> v_;
};

}  // namespace archis::minirel

#endif  // ARCHIS_MINIREL_VALUE_H_
