// Database: a PageManager plus a Catalog — one minirel instance.
#ifndef ARCHIS_MINIREL_DATABASE_H_
#define ARCHIS_MINIREL_DATABASE_H_

#include <memory>
#include <string>

#include "minirel/catalog.h"

namespace archis::minirel {

/// Aggregate storage statistics of a database.
struct DatabaseStats {
  uint64_t data_bytes = 0;
  uint64_t index_bytes = 0;
  uint64_t page_count = 0;
  uint64_t total_bytes() const { return data_bytes + index_bytes; }
};

/// A self-contained relational database instance.
class Database {
 public:
  Database() : catalog_(&pm_) {}

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  storage::PageManager& page_manager() { return pm_; }
  const storage::PageManager& page_manager() const { return pm_; }

  /// Sums data and index bytes over all tables.
  DatabaseStats Stats() const;

 private:
  storage::PageManager pm_;
  Catalog catalog_;
};

}  // namespace archis::minirel

#endif  // ARCHIS_MINIREL_DATABASE_H_
