#include "temporal/aggregate.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>

namespace archis::temporal {
namespace {

/// Event sweep shared by all aggregate flavours: at each boundary date the
/// set of live facts changes; `emit` is called with [from, to] and the live
/// multiset summary between consecutive boundaries.
struct SweepState {
  double sum = 0;
  int64_t count = 0;
  std::multiset<double> live;
};

std::vector<AggregateStep> Sweep(std::vector<TimedNumber> facts,
                                 TemporalAggFn fn) {
  // Boundary events: value enters at tstart, leaves after tend.
  struct Event {
    Date when;
    double value;
    bool enter;
  };
  std::vector<Event> events;
  events.reserve(facts.size() * 2);
  for (const TimedNumber& f : facts) {
    if (!f.interval.valid()) continue;
    events.push_back({f.interval.tstart, f.value, true});
    if (!f.interval.tend.IsForever()) {
      events.push_back({f.interval.tend.AddDays(1), f.value, false});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.when < b.when; });

  std::vector<AggregateStep> steps;
  SweepState st;
  const bool needs_set = fn == TemporalAggFn::kMax || fn == TemporalAggFn::kMin;

  auto current_value = [&]() -> double {
    switch (fn) {
      case TemporalAggFn::kSum: return st.sum;
      case TemporalAggFn::kAvg:
        return st.count == 0 ? 0.0 : st.sum / static_cast<double>(st.count);
      case TemporalAggFn::kCount: return static_cast<double>(st.count);
      case TemporalAggFn::kMax:
        return st.live.empty() ? 0.0 : *st.live.rbegin();
      case TemporalAggFn::kMin:
        return st.live.empty() ? 0.0 : *st.live.begin();
    }
    return 0.0;
  };

  size_t i = 0;
  std::optional<Date> open_start;
  while (i < events.size()) {
    const Date when = events[i].when;
    // Close the running interval one day before this boundary.
    if (open_start && st.count > 0) {
      AggregateStep step{MakeInterval(*open_start, when.AddDays(-1)),
                         current_value(), st.count};
      if (!steps.empty() && steps.back().value == step.value &&
          steps.back().count == step.count &&
          steps.back().interval.Meets(step.interval)) {
        steps.back().interval.tend = step.interval.tend;
      } else {
        steps.push_back(step);
      }
    }
    // Apply all events at this date.
    while (i < events.size() && events[i].when == when) {
      const Event& e = events[i];
      if (e.enter) {
        st.sum += e.value;
        ++st.count;
        if (needs_set) st.live.insert(e.value);
      } else {
        st.sum -= e.value;
        --st.count;
        if (needs_set) {
          auto it = st.live.find(e.value);
          if (it != st.live.end()) st.live.erase(it);
        }
      }
      ++i;
    }
    open_start = when;
  }
  // Tail: if facts remain live, the final step runs to `now`.
  if (open_start && st.count > 0) {
    steps.push_back({MakeInterval(*open_start, Date::Forever()),
                     current_value(), st.count});
  }
  return steps;
}

}  // namespace

std::vector<AggregateStep> TemporalAggregate(std::vector<TimedNumber> facts,
                                             TemporalAggFn fn) {
  return Sweep(std::move(facts), fn);
}

std::vector<xml::XmlNodePtr> TAvgNodes(
    const std::vector<xml::XmlNodePtr>& nodes) {
  std::vector<TimedNumber> facts;
  for (const auto& n : nodes) {
    auto iv = n->Interval();
    if (!iv.ok()) continue;
    char* end = nullptr;
    const std::string text = n->StringValue();
    double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str()) continue;  // non-numeric
    facts.push_back({v, *iv});
  }
  std::vector<xml::XmlNodePtr> out;
  for (const AggregateStep& step :
       TemporalAggregate(std::move(facts), TemporalAggFn::kAvg)) {
    auto node = xml::XmlNode::Element("tavg");
    node->SetInterval(step.interval);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", step.value);
    node->AppendText(buf);
    out.push_back(std::move(node));
  }
  return out;
}

std::vector<TimeInterval> RisingIntervals(
    const std::vector<AggregateStep>& history) {
  std::vector<TimeInterval> out;
  size_t i = 0;
  while (i < history.size()) {
    size_t j = i;
    while (j + 1 < history.size() &&
           history[j + 1].value > history[j].value &&
           history[j].interval.OverlapsOrMeets(history[j + 1].interval)) {
      ++j;
    }
    if (j > i) {
      out.push_back(MakeInterval(history[i].interval.tstart,
                                 history[j].interval.tend));
    }
    i = j + 1;
  }
  return out;
}

std::vector<AggregateStep> MovingWindowAvg(
    const std::vector<AggregateStep>& history, int64_t window_days) {
  std::vector<AggregateStep> out;
  for (const AggregateStep& step : history) {
    const Date to = step.interval.tend;
    const Date from_limit =
        to.IsForever() ? step.interval.tstart : to.AddDays(-(window_days - 1));
    double weighted = 0;
    int64_t days = 0;
    for (const AggregateStep& h : history) {
      if (h.interval.tstart > to) break;
      TimeInterval clip(MaxDate(h.interval.tstart, from_limit),
                        MinDate(h.interval.tend, to));
      if (!clip.valid()) continue;
      weighted += h.value * static_cast<double>(clip.duration_days());
      days += clip.duration_days();
    }
    out.push_back({step.interval,
                   days == 0 ? 0.0 : weighted / static_cast<double>(days),
                   step.count});
  }
  return out;
}

}  // namespace archis::temporal
