// Temporal restructuring: intersecting the interval structure of two
// element lists (the paper's `restructure($a,$b)` UDF, used by QUERY 6 to
// find maximal periods in which neither title nor department changed).
#ifndef ARCHIS_TEMPORAL_RESTRUCTURE_H_
#define ARCHIS_TEMPORAL_RESTRUCTURE_H_

#include <vector>

#include "common/interval.h"
#include "xml/node.h"

namespace archis::temporal {

/// All pairwise intersections of intervals from `a` and `b`, sorted by
/// start. Each output interval is a maximal period during which one value
/// of `a` and one value of `b` both held.
std::vector<TimeInterval> RestructureIntervals(
    const std::vector<TimeInterval>& a, const std::vector<TimeInterval>& b);

/// Node-list flavour: reads tstart/tend from each element; elements
/// without intervals are ignored.
std::vector<TimeInterval> RestructureNodes(
    const std::vector<xml::XmlNodePtr>& a,
    const std::vector<xml::XmlNodePtr>& b);

/// Longest duration (in days) among `intervals`; 0 when empty. Intervals
/// ending at the `now` sentinel are measured up to `as_of`.
int64_t MaxDurationDays(const std::vector<TimeInterval>& intervals,
                        Date as_of);

}  // namespace archis::temporal

#endif  // ARCHIS_TEMPORAL_RESTRUCTURE_H_
