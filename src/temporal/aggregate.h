// Temporal aggregates via the single-scan sweep the paper describes for
// `tavg` (QUERY 5): build +value / -value events at interval endpoints,
// sort by timestamp, and emit a constant-valued interval whenever the
// running sum changes.
#ifndef ARCHIS_TEMPORAL_AGGREGATE_H_
#define ARCHIS_TEMPORAL_AGGREGATE_H_

#include <vector>

#include "common/interval.h"
#include "xml/node.h"

namespace archis::temporal {

/// A numeric fact with its validity interval.
struct TimedNumber {
  double value;
  TimeInterval interval;
};

/// One step of an aggregate history: the aggregate held `value` over
/// `interval`.
struct AggregateStep {
  TimeInterval interval;
  double value;
  int64_t count;  ///< facts live during the interval

  bool operator==(const AggregateStep&) const = default;
};

/// Which temporal aggregate to compute.
enum class TemporalAggFn { kSum, kAvg, kCount, kMax, kMin };

/// Computes the history of `fn` over the facts in one sweep.
///
/// kSum/kAvg/kCount run in O(n log n); kMax/kMin use an endpoint sweep with
/// a multiset of live values. Adjacent steps with equal values coalesce.
std::vector<AggregateStep> TemporalAggregate(std::vector<TimedNumber> facts,
                                             TemporalAggFn fn);

/// The paper's `tavg($s)` over timestamped elements whose string values are
/// numeric: returns `<tavg tstart=.. tend=..>value</tavg>` elements.
std::vector<xml::XmlNodePtr> TAvgNodes(
    const std::vector<xml::XmlNodePtr>& nodes);

/// RISING: maximal intervals over which the aggregate history is strictly
/// rising (a paper-mentioned extension aggregate).
std::vector<TimeInterval> RisingIntervals(
    const std::vector<AggregateStep>& history);

/// Moving-window aggregate: for each step boundary, the average of the
/// aggregate history over the trailing `window_days`.
std::vector<AggregateStep> MovingWindowAvg(
    const std::vector<AggregateStep>& history, int64_t window_days);

}  // namespace archis::temporal

#endif  // ARCHIS_TEMPORAL_AGGREGATE_H_
