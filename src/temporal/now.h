// Handling of `now` / until-changed (paper Section 4.3).
//
// Internally current tuples carry the end-of-time sentinel 9999-12-31 so
// ordinary ordering and index techniques work unchanged. For end users,
// `rtend` rewrites the sentinel to the current date and `externalnow`
// rewrites it to the literal string "now".
#ifndef ARCHIS_TEMPORAL_NOW_H_
#define ARCHIS_TEMPORAL_NOW_H_

#include "common/date.h"
#include "xml/node.h"

namespace archis::temporal {

/// The sentinel's textual form, "9999-12-31".
std::string ForeverString();

/// Recursively replaces every tstart/tend attribute (and text occurrence)
/// equal to the sentinel with `current_date` in a deep copy of `node`.
xml::XmlNodePtr Rtend(const xml::XmlNodePtr& node, Date current_date);

/// Recursively replaces the sentinel with the string "now" in a deep copy.
xml::XmlNodePtr ExternalNow(const xml::XmlNodePtr& node);

/// `tend` semantics for query predicates: the end of `iv`, or `as_of` when
/// the interval is current — divorcing queries from the sentinel encoding.
Date EffectiveEnd(const TimeInterval& iv, Date as_of);

}  // namespace archis::temporal

#endif  // ARCHIS_TEMPORAL_NOW_H_
