#include "temporal/now.h"

namespace archis::temporal {
namespace {

void RewriteRec(const xml::XmlNodePtr& node, const std::string& sentinel,
                const std::string& replacement) {
  if (node->is_element()) {
    for (const xml::XmlAttr& a : node->attrs()) {
      if (a.value == sentinel) {
        node->SetAttr(a.name, replacement);
      }
    }
    for (const auto& child : node->children()) {
      RewriteRec(child, sentinel, replacement);
    }
  }
}

}  // namespace

std::string ForeverString() { return Date::Forever().ToString(); }

xml::XmlNodePtr Rtend(const xml::XmlNodePtr& node, Date current_date) {
  xml::XmlNodePtr copy = node->Clone();
  RewriteRec(copy, ForeverString(), current_date.ToString());
  return copy;
}

xml::XmlNodePtr ExternalNow(const xml::XmlNodePtr& node) {
  xml::XmlNodePtr copy = node->Clone();
  RewriteRec(copy, ForeverString(), "now");
  return copy;
}

Date EffectiveEnd(const TimeInterval& iv, Date as_of) {
  return iv.tend.IsForever() ? as_of : iv.tend;
}

}  // namespace archis::temporal
