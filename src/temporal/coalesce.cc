#include "temporal/coalesce.h"

#include <algorithm>
#include <map>

namespace archis::temporal {

std::vector<TimeInterval> CoalesceIntervals(std::vector<TimeInterval> in) {
  std::sort(in.begin(), in.end());
  std::vector<TimeInterval> out;
  for (const TimeInterval& iv : in) {
    if (!iv.valid()) continue;
    if (!out.empty() && out.back().OverlapsOrMeets(iv)) {
      out.back() = out.back().Span(iv);
    } else {
      out.push_back(iv);
    }
  }
  return out;
}

std::vector<TimedValue> CoalesceValues(std::vector<TimedValue> in) {
  std::map<std::string, std::vector<TimeInterval>> by_value;
  for (TimedValue& tv : in) {
    by_value[tv.value].push_back(tv.interval);
  }
  std::vector<TimedValue> out;
  for (auto& [value, intervals] : by_value) {
    for (const TimeInterval& iv : CoalesceIntervals(std::move(intervals))) {
      out.push_back({value, iv});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TimedValue& a, const TimedValue& b) {
    if (a.interval.tstart != b.interval.tstart) {
      return a.interval.tstart < b.interval.tstart;
    }
    return a.value < b.value;
  });
  return out;
}

Result<std::vector<xml::XmlNodePtr>> CoalesceNodes(
    const std::vector<xml::XmlNodePtr>& nodes) {
  std::vector<std::string> tag_order;
  std::map<std::string, std::vector<TimedValue>> by_tag;
  for (const auto& n : nodes) {
    auto iv = n->Interval();
    if (!iv.ok()) {
      return Status::InvalidArgument(
          "coalesce: element <" + n->name() +
          "> has no valid interval: " + iv.status().message());
    }
    auto [it, inserted] = by_tag.try_emplace(n->name());
    if (inserted) tag_order.push_back(n->name());
    it->second.push_back({n->StringValue(), *iv});
  }
  std::vector<xml::XmlNodePtr> out;
  for (const std::string& tag : tag_order) {
    for (const TimedValue& tv : CoalesceValues(std::move(by_tag[tag]))) {
      auto node = xml::XmlNode::Element(tag);
      node->SetInterval(tv.interval);
      node->AppendText(tv.value);
      out.push_back(std::move(node));
    }
  }
  return out;
}

}  // namespace archis::temporal
