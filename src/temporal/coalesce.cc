#include "temporal/coalesce.h"

#include <algorithm>
#include <map>

namespace archis::temporal {

std::vector<TimeInterval> CoalesceIntervals(std::vector<TimeInterval> in) {
  std::sort(in.begin(), in.end());
  std::vector<TimeInterval> out;
  for (const TimeInterval& iv : in) {
    if (!iv.valid()) continue;
    if (!out.empty() && out.back().OverlapsOrMeets(iv)) {
      out.back() = out.back().Span(iv);
    } else {
      out.push_back(iv);
    }
  }
  return out;
}

std::vector<TimedValue> CoalesceValues(std::vector<TimedValue> in) {
  std::map<std::string, std::vector<TimeInterval>> by_value;
  for (TimedValue& tv : in) {
    by_value[tv.value].push_back(tv.interval);
  }
  std::vector<TimedValue> out;
  for (auto& [value, intervals] : by_value) {
    for (const TimeInterval& iv : CoalesceIntervals(std::move(intervals))) {
      out.push_back({value, iv});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TimedValue& a, const TimedValue& b) {
    if (a.interval.tstart != b.interval.tstart) {
      return a.interval.tstart < b.interval.tstart;
    }
    return a.value < b.value;
  });
  return out;
}

std::vector<xml::XmlNodePtr> CoalesceNodes(
    const std::vector<xml::XmlNodePtr>& nodes) {
  std::vector<TimedValue> timed;
  std::string tag;
  for (const auto& n : nodes) {
    auto iv = n->Interval();
    if (!iv.ok()) continue;
    if (tag.empty()) tag = n->name();
    timed.push_back({n->StringValue(), *iv});
  }
  std::vector<xml::XmlNodePtr> out;
  for (const TimedValue& tv : CoalesceValues(std::move(timed))) {
    auto node = xml::XmlNode::Element(tag.empty() ? "value" : tag);
    node->SetInterval(tv.interval);
    node->AppendText(tv.value);
    out.push_back(std::move(node));
  }
  return out;
}

}  // namespace archis::temporal
