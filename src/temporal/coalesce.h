// Temporal coalescing: merging value-equivalent timestamped facts whose
// intervals overlap or are adjacent (paper Section 3).
//
// Under the temporally-grouped H-document model most data arrives already
// coalesced; these routines implement the general operation for query
// results and for the grouping step of the publisher/archiver.
#ifndef ARCHIS_TEMPORAL_COALESCE_H_
#define ARCHIS_TEMPORAL_COALESCE_H_

#include <string>
#include <vector>

#include "common/interval.h"
#include "xml/node.h"

namespace archis::temporal {

/// A fact: an opaque value string plus its transaction-time interval.
struct TimedValue {
  std::string value;
  TimeInterval interval;

  bool operator==(const TimedValue&) const = default;
};

/// Coalesces a set of intervals (no values): the minimal set of disjoint,
/// non-adjacent intervals with the same coverage, sorted by start.
std::vector<TimeInterval> CoalesceIntervals(std::vector<TimeInterval> in);

/// Coalesces timed values: value-equivalent entries with overlapping or
/// adjacent intervals merge. Output is sorted by (start, value).
std::vector<TimedValue> CoalesceValues(std::vector<TimedValue> in);

/// Coalesces a list of timestamped XML elements (the paper's
/// `coalesce($l)` UDF). Elements are grouped by tag name (facts under
/// different tags are never the same fact, whatever their string values);
/// within a group, elements are value-equivalent when their string values
/// are equal. Returns fresh elements with merged intervals, groups in
/// first-appearance order of their tag. A node whose interval is missing
/// or unparsable is an error — silently dropping it would lose history.
Result<std::vector<xml::XmlNodePtr>> CoalesceNodes(
    const std::vector<xml::XmlNodePtr>& nodes);

}  // namespace archis::temporal

#endif  // ARCHIS_TEMPORAL_COALESCE_H_
