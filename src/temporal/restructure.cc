#include "temporal/restructure.h"

#include <algorithm>

namespace archis::temporal {

std::vector<TimeInterval> RestructureIntervals(
    const std::vector<TimeInterval>& a, const std::vector<TimeInterval>& b) {
  std::vector<TimeInterval> out;
  for (const TimeInterval& x : a) {
    for (const TimeInterval& y : b) {
      if (auto iv = x.Intersect(y)) out.push_back(*iv);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<TimeInterval> RestructureNodes(
    const std::vector<xml::XmlNodePtr>& a,
    const std::vector<xml::XmlNodePtr>& b) {
  auto intervals = [](const std::vector<xml::XmlNodePtr>& nodes) {
    std::vector<TimeInterval> out;
    for (const auto& n : nodes) {
      if (auto iv = n->Interval(); iv.ok()) out.push_back(*iv);
    }
    return out;
  };
  return RestructureIntervals(intervals(a), intervals(b));
}

int64_t MaxDurationDays(const std::vector<TimeInterval>& intervals,
                        Date as_of) {
  int64_t best = 0;
  for (const TimeInterval& iv : intervals) {
    Date end = iv.tend.IsForever() ? as_of : iv.tend;
    if (end < iv.tstart) continue;
    best = std::max(best, end - iv.tstart + 1);
  }
  return best;
}

}  // namespace archis::temporal
