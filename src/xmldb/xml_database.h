// TaminoLite: the native XML database baseline — a DocumentStore plus a
// native XQuery endpoint. Stands in for Tamino XML Server in the paper's
// Figures 8, 11, 13 and 14.
#ifndef ARCHIS_XMLDB_XML_DATABASE_H_
#define ARCHIS_XMLDB_XML_DATABASE_H_

#include <string>

#include "xmldb/document_store.h"
#include "xquery/evaluator.h"

namespace archis::xmldb {

/// A native XML database: stores H-documents and answers XQuery against
/// them by materialising the stored form on every query (cold-cache, like
/// the paper's unmount-remount methodology).
class XmlDatabase {
 public:
  explicit XmlDatabase(StorageMode mode, Date current_date)
      : store_(mode), current_date_(current_date) {}

  /// Stores (or replaces) a document.
  Status PutDocument(const std::string& name, const xml::XmlNodePtr& root);

  /// Runs an XQuery; doc("name") resolves against the store.
  Result<xquery::Sequence> Query(const std::string& query);

  /// Updates the document in place via a mutator that receives the
  /// materialised DOM and re-stores the result (document-level update,
  /// which is why updates are slow on the native store, Section 8.4).
  Status UpdateDocument(
      const std::string& name,
      const std::function<Status(const xml::XmlNodePtr&)>& mutate);

  DocumentStore& store() { return store_; }
  const DocumentStore& store() const { return store_; }

  void set_current_date(Date d) { current_date_ = d; }
  Date current_date() const { return current_date_; }

 private:
  DocumentStore store_;
  Date current_date_;
};

}  // namespace archis::xmldb

#endif  // ARCHIS_XMLDB_XML_DATABASE_H_
