#include "xmldb/xml_database.h"

namespace archis::xmldb {

Status XmlDatabase::PutDocument(const std::string& name,
                                const xml::XmlNodePtr& root) {
  return store_.Put(name, root);
}

Result<xquery::Sequence> XmlDatabase::Query(const std::string& query) {
  xquery::EvalContext ctx;
  ctx.current_date = current_date_;
  ctx.resolve_doc = [this](const std::string& name) {
    return store_.Get(name);
  };
  xquery::Evaluator evaluator(std::move(ctx));
  return evaluator.EvaluateQuery(query);
}

Status XmlDatabase::UpdateDocument(
    const std::string& name,
    const std::function<Status(const xml::XmlNodePtr&)>& mutate) {
  ARCHIS_ASSIGN_OR_RETURN(xml::XmlNodePtr root, store_.Get(name));
  ARCHIS_RETURN_NOT_OK(mutate(root));
  return store_.Put(name, root);
}

}  // namespace archis::xmldb
