#include "xmldb/document_store.h"

#include <cstring>

#include "xml/parser.h"
#include "xml/serializer.h"

namespace archis::xmldb {
namespace {

/// Per-record storage overhead of the native store: record header plus the
/// node-index entry a native XML database keeps for navigation. This is
/// what makes native uncompressed storage larger than the raw text
/// (Tamino's 1.47 expansion in the paper's Figure 13 context).
constexpr uint64_t kNativeRecordOverhead = 16;

void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU32(std::string_view data, size_t* pos, uint32_t* v) {
  if (*pos + sizeof(uint32_t) > data.size()) return false;
  std::memcpy(v, data.data() + *pos, sizeof(*v));
  *pos += sizeof(*v);
  return true;
}

void AppendStr(std::string* out, const std::string& s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool ReadStr(std::string_view data, size_t* pos, std::string* s) {
  uint32_t len;
  if (!ReadU32(data, pos, &len)) return false;
  if (*pos + len > data.size()) return false;
  s->assign(data.substr(*pos, len));
  *pos += len;
  return true;
}

/// Shreds a DOM into per-node records: (depth, kind, name, attrs, text).
void ShredNode(const xml::XmlNodePtr& node, uint32_t depth,
               std::vector<std::string>* records) {
  std::string rec;
  AppendU32(&rec, depth);
  rec.push_back(node->is_element() ? 'E' : 'T');
  if (node->is_element()) {
    AppendStr(&rec, node->name());
    AppendU32(&rec, static_cast<uint32_t>(node->attrs().size()));
    for (const xml::XmlAttr& a : node->attrs()) {
      AppendStr(&rec, a.name);
      AppendStr(&rec, a.value);
    }
    records->push_back(std::move(rec));
    for (const auto& child : node->children()) {
      ShredNode(child, depth + 1, records);
    }
  } else {
    AppendStr(&rec, node->StringValue());
    records->push_back(std::move(rec));
  }
}

/// Rebuilds a DOM from shredded records.
Result<xml::XmlNodePtr> UnshredNodes(const std::vector<std::string>& records) {
  xml::XmlNodePtr root;
  std::vector<xml::XmlNodePtr> stack;  // stack[d] = open element at depth d
  for (const std::string& rec : records) {
    size_t pos = 0;
    uint32_t depth;
    if (!ReadU32(rec, &pos, &depth) || pos >= rec.size()) {
      return Status::Corruption("bad shredded record header");
    }
    char kind = rec[pos++];
    xml::XmlNodePtr node;
    if (kind == 'E') {
      std::string name;
      if (!ReadStr(rec, &pos, &name)) {
        return Status::Corruption("bad element record");
      }
      node = xml::XmlNode::Element(name);
      uint32_t nattrs;
      if (!ReadU32(rec, &pos, &nattrs)) {
        return Status::Corruption("bad attr count");
      }
      for (uint32_t i = 0; i < nattrs; ++i) {
        std::string aname, avalue;
        if (!ReadStr(rec, &pos, &aname) || !ReadStr(rec, &pos, &avalue)) {
          return Status::Corruption("bad attribute record");
        }
        node->SetAttr(aname, avalue);
      }
    } else if (kind == 'T') {
      std::string text;
      if (!ReadStr(rec, &pos, &text)) {
        return Status::Corruption("bad text record");
      }
      node = xml::XmlNode::Text(text);
    } else {
      return Status::Corruption("bad node kind");
    }
    if (depth == 0) {
      root = node;
      stack.assign(1, node);
    } else {
      if (depth > stack.size()) {
        return Status::Corruption("shredded depth out of order");
      }
      stack.resize(depth);
      stack.back()->AppendChild(node);
      if (kind == 'E') stack.push_back(node);
    }
  }
  if (root == nullptr) return Status::Corruption("empty shredded document");
  return root;
}

}  // namespace

Status DocumentStore::Put(const std::string& name,
                          const xml::XmlNodePtr& root) {
  StoredDoc doc;
  std::string text = xml::Serialize(root);
  doc.stats.source_bytes = text.size();
  doc.stats.node_count = root->CountElements();
  if (mode_ == StorageMode::kCompressed) {
    // Tamino-style: the document text compressed in storage-sized blocks.
    std::vector<std::string> chunks;
    constexpr size_t kChunk = 64 * 1024;
    for (size_t i = 0; i < text.size(); i += kChunk) {
      chunks.push_back(text.substr(i, kChunk));
    }
    ARCHIS_ASSIGN_OR_RETURN(doc.blocks, compress::BlockZipCompress(chunks));
    doc.stats.stored_bytes = compress::TotalCompressedBytes(doc.blocks);
  } else {
    ShredNode(root, 0, &doc.node_records);
    uint64_t bytes = 0;
    for (const std::string& rec : doc.node_records) {
      bytes += rec.size() + kNativeRecordOverhead;
    }
    doc.stats.stored_bytes = bytes;
  }
  MutexLock lock(mu_);
  docs_[name] = std::move(doc);
  return Status::OK();
}

Result<xml::XmlNodePtr> DocumentStore::Get(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = docs_.find(name);
  if (it == docs_.end()) {
    return Status::NotFound("document '" + name + "'");
  }
  const StoredDoc& doc = it->second;
  if (mode_ == StorageMode::kCompressed) {
    std::string text;
    for (const compress::CompressedBlock& block : doc.blocks) {
      ARCHIS_ASSIGN_OR_RETURN(std::vector<std::string> chunks,
                              compress::BlockZipUncompress(block));
      for (const std::string& c : chunks) text += c;
    }
    return xml::ParseDocument(text);
  }
  return UnshredNodes(doc.node_records);
}

bool DocumentStore::Has(const std::string& name) const {
  MutexLock lock(mu_);
  return docs_.count(name) != 0;
}

Result<DocumentStats> DocumentStore::Stats(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = docs_.find(name);
  if (it == docs_.end()) {
    return Status::NotFound("document '" + name + "'");
  }
  return it->second.stats;
}

uint64_t DocumentStore::TotalStoredBytes() const {
  MutexLock lock(mu_);
  uint64_t total = 0;
  for (const auto& [name, doc] : docs_) total += doc.stats.stored_bytes;
  return total;
}

std::vector<std::string> DocumentStore::Names() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, doc] : docs_) names.push_back(name);
  return names;
}

}  // namespace archis::xmldb
