// Document storage for the native-XML-database baseline ("TaminoLite").
//
// Plays the role Tamino plays in the paper's experiments: H-documents are
// stored natively — shredded into per-node records (uncompressed mode,
// which expands over the raw text, cf. Tamino's 1.47 ratio in Figure 13)
// or as gzip-style compressed text blocks (compressed mode, cf. Tamino's
// 0.22 ratio in Figure 11). There is no temporal clustering or indexing:
// every query materialises the document from storage, exactly the
// disadvantage the paper measures.
#ifndef ARCHIS_XMLDB_DOCUMENT_STORE_H_
#define ARCHIS_XMLDB_DOCUMENT_STORE_H_

#include <map>
#include <string>
#include <vector>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "compress/block_zip.h"
#include "xml/node.h"

namespace archis::xmldb {

/// Storage mode for documents.
enum class StorageMode {
  kNative,      ///< shredded per-node records (uncompressed, expanded)
  kCompressed,  ///< zlib-compressed text blocks (Tamino's default)
};

/// Storage accounting for one stored document.
struct DocumentStats {
  uint64_t source_bytes = 0;  ///< serialized XML text size
  uint64_t stored_bytes = 0;  ///< bytes the store actually holds
  uint64_t node_count = 0;    ///< elements in the document
};

/// Stores named XML documents and materialises them on demand.
///
/// Thread-safe: the document map is mutex-protected, so concurrent Put /
/// Get from serving threads is allowed (Get decompresses under the lock —
/// this baseline deliberately has no read-side caching or sharding, which
/// is exactly the disadvantage the paper measures).
class DocumentStore {
 public:
  explicit DocumentStore(StorageMode mode) : mode_(mode) {}

  /// Stores `root` under `name`, replacing any previous version.
  Status Put(const std::string& name, const xml::XmlNodePtr& root)
      ARCHIS_EXCLUDES(mu_);

  /// Materialises the document: decompress and/or re-parse from storage.
  /// Deliberately NOT cached — the paper's measurements are cold.
  Result<xml::XmlNodePtr> Get(const std::string& name) const
      ARCHIS_EXCLUDES(mu_);

  /// Whether `name` is stored.
  bool Has(const std::string& name) const ARCHIS_EXCLUDES(mu_);

  /// Per-document storage statistics.
  Result<DocumentStats> Stats(const std::string& name) const
      ARCHIS_EXCLUDES(mu_);

  /// Total stored bytes across documents.
  uint64_t TotalStoredBytes() const ARCHIS_EXCLUDES(mu_);

  /// Names of stored documents.
  std::vector<std::string> Names() const ARCHIS_EXCLUDES(mu_);

  StorageMode mode() const { return mode_; }

 private:
  struct StoredDoc {
    // kCompressed: blockwise-deflated serialized text.
    std::vector<compress::CompressedBlock> blocks;
    // kNative: shredded node records.
    std::vector<std::string> node_records;
    DocumentStats stats;
  };

  StorageMode mode_;
  mutable Mutex mu_{LockRank::kDocumentStore};
  std::map<std::string, StoredDoc> docs_ ARCHIS_GUARDED_BY(mu_);
};

}  // namespace archis::xmldb

#endif  // ARCHIS_XMLDB_DOCUMENT_STORE_H_
