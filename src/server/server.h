// archisd network front end: the ArchIS facade behind a socket.
//
// Architecture (DESIGN.md §15): one accept thread per listener hands each
// connection to a session thread that reads frames; every query/update
// request is pushed onto ONE bounded queue drained by a fixed worker
// pool. The queue is the admission valve — when it is full the session
// answers WireStatus::kOverloaded immediately (never a silent drop, never
// an unbounded backlog), and the client decides when to retry. Each
// request carries an absolute deadline that the worker re-checks before
// executing (a request can go stale while queued) and that the query
// executor observes at scan boundaries, so a long merge-scan cancels
// mid-flight instead of holding a worker hostage.
//
// A second, optional HTTP/1.0 listener serves `GET /metrics` (Prometheus
// text exposition of the process-wide registry) and `POST /query` (body =
// XQuery, response = XML). HTTP queries share the same admission queue
// and deadline rules as binary ones.
//
// Shutdown is graceful: Stop() closes the listeners, marks the queue
// closed (new pushes answer kShuttingDown), lets the workers drain every
// request already admitted, then joins all threads. In-flight work
// completes; nothing is abandoned with an unresolved response.
#ifndef ARCHIS_SERVER_SERVER_H_
#define ARCHIS_SERVER_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"

namespace archis::core {
class ArchIS;
}

namespace archis::server {

struct ServerOptions {
  /// Bind address. The default keeps archisd loopback-only; exposing it
  /// beyond the host is an explicit operator decision.
  std::string host = "127.0.0.1";
  /// Binary-protocol port; 0 picks an ephemeral port (see port()).
  int port = 0;
  /// HTTP shim port; -1 disables the shim, 0 picks an ephemeral port.
  int http_port = -1;
  /// Worker threads draining the request queue.
  int workers = 4;
  /// Bounded request-queue capacity — the admission-control knob. A push
  /// into a full queue is shed with kOverloaded.
  size_t queue_capacity = 64;
  /// Deadline applied to requests that do not carry their own, in
  /// milliseconds from admission. 0 = no default deadline.
  uint32_t default_deadline_ms = 0;
  /// Connection ceiling across both listeners; excess accepts are
  /// answered with an overload frame and closed.
  size_t max_connections = 256;
  /// Test hook: every worker sleeps this long before executing a
  /// request, making queue saturation deterministic in tests. 0 in
  /// production.
  uint32_t test_delay_ms = 0;
};

/// A running archisd instance. Construction binds + listens + spawns
/// threads; destruction (or Stop) drains and joins them. The ArchIS
/// facade is borrowed and must outlive the server.
class ArchisServer {
 public:
  static Result<std::unique_ptr<ArchisServer>> Start(core::ArchIS* db,
                                                     ServerOptions options);

  ~ArchisServer();
  ArchisServer(const ArchisServer&) = delete;
  ArchisServer& operator=(const ArchisServer&) = delete;

  /// Graceful shutdown: refuse new connections and new frames, drain every
  /// admitted request, join all threads. Idempotent.
  Status Stop();

  /// Actual bound ports (resolves port 0).
  int port() const;
  int http_port() const;

 private:
  struct Impl;
  explicit ArchisServer(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace archis::server

#endif  // ARCHIS_SERVER_SERVER_H_
