// Blocking client for the archisd wire protocol (server/protocol.h).
//
// One ArchisClient owns one connection. Calls are synchronous — write
// frame, read response — with socket send/receive timeouts so a dead or
// wedged server surfaces as kIOError instead of a hang. On an IO failure
// the client transparently reconnects and retries ONCE (requests are
// idempotent from the protocol's view: a query re-runs; an update batch
// retried after a torn write either conflicts or re-applies — callers
// that need exactly-once turn `reconnect` off).
//
// Not thread-safe: one client per thread, or external serialization.
#ifndef ARCHIS_SERVER_CLIENT_H_
#define ARCHIS_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "server/protocol.h"

namespace archis::server {

struct ClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  /// TCP connect timeout.
  int connect_timeout_ms = 2000;
  /// Per-read/write socket timeout (SO_RCVTIMEO / SO_SNDTIMEO).
  int io_timeout_ms = 10000;
  /// Reconnect and retry once after an IO failure.
  bool reconnect = true;
};

class ArchisClient {
 public:
  explicit ArchisClient(ClientOptions options);
  ~ArchisClient();
  ArchisClient(const ArchisClient&) = delete;
  ArchisClient& operator=(const ArchisClient&) = delete;

  /// Establishes the connection (optional: the first request connects
  /// lazily).
  Status Connect();

  /// Liveness round trip.
  Status Ping();

  /// Runs an XQuery; returns the serialized XML result document.
  /// `deadline_ms` is a relative per-request deadline (0 = server
  /// default). A shed request fails with kOverloaded, an expired one
  /// with kDeadlineExceeded — both carried back from the wire status.
  Result<std::string> Query(const std::string& xquery,
                            uint32_t deadline_ms = 0);

  /// Applies an update-batch script (see protocol.h grammar) as one
  /// transaction; returns the server's "committed N" acknowledgement.
  Result<std::string> UpdateBatch(const std::string& script);

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  Result<std::string> Roundtrip(FrameType type, const std::string& payload);

  ClientOptions opts_;
  int fd_ = -1;
};

}  // namespace archis::server

#endif  // ARCHIS_SERVER_CLIENT_H_
