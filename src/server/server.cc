#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "archis/archis.h"
#include "common/date.h"
#include "common/flight_recorder.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/parse.h"
#include "common/thread_annotations.h"
#include "server/protocol.h"
#include "xml/serializer.h"

namespace archis::server {
namespace {

using Clock = std::chrono::steady_clock;

// -- Metrics (DESIGN.md §9 / §15) -------------------------------------------

metrics::Counter* RequestsCounter(const char* type) {
  // One labeled series per request kind; the set is small and fixed.
  static metrics::Counter* ping = metrics::Registry::Global().GetCounter(
      "archis_server_requests_total{type=\"ping\"}",
      "Requests received by archisd, by type");
  static metrics::Counter* query = metrics::Registry::Global().GetCounter(
      "archis_server_requests_total{type=\"query\"}",
      "Requests received by archisd, by type");
  static metrics::Counter* update = metrics::Registry::Global().GetCounter(
      "archis_server_requests_total{type=\"update\"}",
      "Requests received by archisd, by type");
  static metrics::Counter* http_query = metrics::Registry::Global().GetCounter(
      "archis_server_requests_total{type=\"http_query\"}",
      "Requests received by archisd, by type");
  static metrics::Counter* http_metrics =
      metrics::Registry::Global().GetCounter(
          "archis_server_requests_total{type=\"http_metrics\"}",
          "Requests received by archisd, by type");
  if (std::strcmp(type, "ping") == 0) return ping;
  if (std::strcmp(type, "query") == 0) return query;
  if (std::strcmp(type, "update") == 0) return update;
  if (std::strcmp(type, "http_query") == 0) return http_query;
  return http_metrics;
}

metrics::Counter* ShedCounter() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_server_shed_total",
      "Requests shed by admission control (queue full or connection limit)");
  return c;
}

metrics::Counter* DeadlineCounter() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_server_deadline_exceeded_total",
      "Requests answered with DeadlineExceeded (stale in queue or cancelled "
      "mid-execution)");
  return c;
}

metrics::Counter* ProtocolErrorCounter() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_server_protocol_errors_total",
      "Malformed frames received (oversized length prefix, unknown type, "
      "truncated payload)");
  return c;
}

metrics::Counter* ConnectionsTotal() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "archis_server_connections_total", "Connections accepted by archisd");
  return c;
}

metrics::Gauge* ConnectionsGauge() {
  static metrics::Gauge* g = metrics::Registry::Global().GetGauge(
      "archis_server_connections", "Connections currently open");
  return g;
}

metrics::Gauge* QueueDepthGauge() {
  static metrics::Gauge* g = metrics::Registry::Global().GetGauge(
      "archis_server_queue_depth", "Requests admitted and waiting for a worker");
  return g;
}

metrics::Histogram* RequestSeconds() {
  static metrics::Histogram* h = metrics::Registry::Global().GetHistogram(
      "archis_server_request_seconds",
      "End-to-end server request latency (admission to response)",
      metrics::DefaultLatencyBuckets());
  return h;
}

metrics::WindowedHistogram* RequestWindow() {
  static metrics::WindowedHistogram* w = metrics::Registry::Global().GetWindowed(
      "archis_server_request_window",
      "Windowed server request latency (admission to response)",
      metrics::DefaultLatencyBuckets());
  return w;
}

// -- Request queue (the admission valve) ------------------------------------

struct Response {
  WireStatus status = WireStatus::kInternal;
  std::string payload;
};

struct PendingRequest {
  FrameType type = FrameType::kPing;
  std::string body;  ///< XQuery text or update script
  std::optional<Clock::time_point> deadline;
  uint64_t seq = 0;
  const char* kind = "query";
  std::promise<Response> promise;
};

enum class PushOutcome { kAdmitted, kFull, kClosed };

/// Bounded MPMC queue. Push never blocks (admission control answers
/// immediately); Pop blocks until an item arrives or the queue is closed
/// AND drained — so closing lets workers finish every admitted request.
class RequestQueue {
 public:
  explicit RequestQueue(size_t capacity) : capacity_(capacity) {}

  PushOutcome TryPush(std::shared_ptr<PendingRequest> req) {
    {
      MutexLock l(mu_);
      if (closed_) return PushOutcome::kClosed;
      if (items_.size() >= capacity_) return PushOutcome::kFull;
      items_.push_back(std::move(req));
    }
    QueueDepthGauge()->Add(1);
    cv_.NotifyOne();
    return PushOutcome::kAdmitted;
  }

  /// nullptr means closed-and-drained: the worker should exit.
  std::shared_ptr<PendingRequest> Pop() {
    std::shared_ptr<PendingRequest> req;
    {
      MutexLock l(mu_);
      cv_.Wait(mu_, [this]() ARCHIS_REQUIRES(mu_) {
        return closed_ || !items_.empty();
      });
      if (items_.empty()) return nullptr;
      req = std::move(items_.front());
      items_.pop_front();
    }
    QueueDepthGauge()->Add(-1);
    return req;
  }

  void Close() {
    {
      MutexLock l(mu_);
      closed_ = true;
    }
    cv_.NotifyAll();
  }

 private:
  Mutex mu_{LockRank::kServerQueue};
  CondVar cv_;
  const size_t capacity_;
  std::deque<std::shared_ptr<PendingRequest>> items_ ARCHIS_GUARDED_BY(mu_);
  bool closed_ ARCHIS_GUARDED_BY(mu_) = false;
};

// -- Socket helpers ----------------------------------------------------------

Result<int> Listen(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address '" + host + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st =
        Status::IOError(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 128) != 0) {
    const Status st =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  return fd;
}

int BoundPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return -1;
  }
  return ntohs(addr.sin_port);
}

/// Waits until `fd` is readable, polling the stop flag every 200 ms.
/// Returns false when the server is stopping or the connection errored.
bool WaitReadable(int fd, const std::atomic<bool>& stopping) {
  while (!stopping.load(std::memory_order_relaxed)) {
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    const int r = ::poll(&p, 1, 200);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r > 0) {
      // Readable OR hung up — either way the next read resolves it.
      return true;
    }
  }
  return false;
}

// -- Update-batch scripts ----------------------------------------------------

std::vector<std::string> SplitFields(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

Result<minirel::Value> ParseTypedValue(const std::string& text,
                                       minirel::DataType type) {
  switch (type) {
    case minirel::DataType::kInt64: {
      ARCHIS_ASSIGN_OR_RETURN(int64_t v, ParseInt64(text));
      return minirel::Value(v);
    }
    case minirel::DataType::kDouble: {
      ARCHIS_ASSIGN_OR_RETURN(double v, ParseDouble(text));
      return minirel::Value(v);
    }
    case minirel::DataType::kString:
      return minirel::Value(text);
    case minirel::DataType::kDate: {
      ARCHIS_ASSIGN_OR_RETURN(Date d, Date::Parse(text));
      return minirel::Value(d);
    }
  }
  return Status::InvalidArgument("unknown column type");
}

/// Applies one update-batch script (see protocol.h for the line grammar)
/// as a single transaction. On success `*applied` holds the number of DML
/// lines committed.
Status ApplyUpdateBatch(core::ArchIS* db, const std::string& script,
                        size_t* applied) {
  ARCHIS_ASSIGN_OR_RETURN(core::Transaction txn, db->Begin());
  size_t count = 0;
  std::istringstream lines(script);
  std::string line;
  int lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const auto fail = [&](const std::string& msg) {
      IgnoreStatus(txn.Abort());  // batch is all-or-nothing
      return Status::InvalidArgument("update script line " +
                                     std::to_string(lineno) + ": " + msg);
    };
    const size_t space = line.find(' ');
    if (space == std::string::npos) return fail("missing operand");
    const std::string op = line.substr(0, space);
    const std::string rest = line.substr(space + 1);
    if (op == "advance") {
      Result<Date> d = Date::Parse(rest);
      if (!d.ok()) return fail("bad date: " + d.status().message());
      // The clock is instance-global; open transactions stamp at commit,
      // so advancing mid-batch is well-defined.
      Status st = db->AdvanceClock(*d);
      if (!st.ok()) return fail(st.message());
      continue;
    }
    std::vector<std::string> fields = SplitFields(rest, '|');
    if (fields.empty() || fields[0].empty()) return fail("missing relation");
    const std::string relation = fields[0];
    Result<minirel::Table*> table = db->current_db().catalog().GetTable(relation);
    if (!table.ok()) return fail(table.status().message());
    const minirel::Schema& schema = (*table)->schema();
    Result<std::vector<std::string>> key_cols = db->KeyColumns(relation);
    if (!key_cols.ok()) return fail(key_cols.status().message());

    if (op == "insert" || op == "update") {
      if (fields.size() - 1 != schema.num_columns()) {
        return fail("expected " + std::to_string(schema.num_columns()) +
                    " values for " + relation + ", got " +
                    std::to_string(fields.size() - 1));
      }
      minirel::Tuple row;
      for (size_t i = 0; i < schema.num_columns(); ++i) {
        Result<minirel::Value> v =
            ParseTypedValue(fields[i + 1], schema.column(i).type);
        if (!v.ok()) {
          return fail("column '" + schema.column(i).name +
                      "': " + v.status().message());
        }
        row.Append(std::move(*v));
      }
      Status st;
      if (op == "insert") {
        st = txn.Insert(relation, row);
      } else {
        // Keys are invariant, so the key values live inside the full row.
        std::vector<minirel::Value> key;
        for (const std::string& col : *key_cols) {
          ARCHIS_ASSIGN_OR_RETURN(size_t idx, schema.ColumnIndex(col));
          key.push_back(row.at(idx));
        }
        st = txn.Update(relation, key, row);
      }
      if (!st.ok()) return fail(st.message());
    } else if (op == "delete") {
      if (fields.size() - 1 != key_cols->size()) {
        return fail("expected " + std::to_string(key_cols->size()) +
                    " key values for " + relation);
      }
      std::vector<minirel::Value> key;
      for (size_t i = 0; i < key_cols->size(); ++i) {
        ARCHIS_ASSIGN_OR_RETURN(size_t idx,
                                schema.ColumnIndex((*key_cols)[i]));
        Result<minirel::Value> v =
            ParseTypedValue(fields[i + 1], schema.column(idx).type);
        if (!v.ok()) {
          return fail("key '" + (*key_cols)[i] + "': " + v.status().message());
        }
        key.push_back(std::move(*v));
      }
      Status st = txn.Delete(relation, key);
      if (!st.ok()) return fail(st.message());
    } else {
      return fail("unknown op '" + op + "'");
    }
    ++count;
  }
  ARCHIS_RETURN_NOT_OK(txn.Commit());
  *applied = count;
  return Status::OK();
}

std::string HttpStatusLine(WireStatus s) {
  switch (s) {
    case WireStatus::kOk:               return "200 OK";
    case WireStatus::kInvalidArgument:
    case WireStatus::kParseError:
    case WireStatus::kUnsupported:      return "400 Bad Request";
    case WireStatus::kNotFound:         return "404 Not Found";
    case WireStatus::kOverloaded:
    case WireStatus::kShuttingDown:     return "503 Service Unavailable";
    case WireStatus::kDeadlineExceeded: return "504 Gateway Timeout";
    case WireStatus::kConflict:         return "409 Conflict";
    case WireStatus::kInternal:         return "500 Internal Server Error";
  }
  return "500 Internal Server Error";
}

}  // namespace

// -- Server impl -------------------------------------------------------------

struct ArchisServer::Impl {
  core::ArchIS* db = nullptr;
  ServerOptions opts;
  int listen_fd = -1;
  int http_fd = -1;
  int bound_port = -1;
  int bound_http_port = -1;

  std::atomic<bool> stopping{false};
  std::atomic<bool> stopped{false};
  std::atomic<uint64_t> next_seq{1};
  std::atomic<uint64_t> next_session{1};

  RequestQueue queue;
  std::vector<std::thread> workers;
  std::thread accept_thread;
  std::thread http_accept_thread;

  /// Session registry: live threads by id, plus ids whose thread has
  /// finished and is ready to join (sessions cannot join themselves).
  Mutex mu{LockRank::kServerState};
  std::map<uint64_t, std::thread> sessions ARCHIS_GUARDED_BY(mu);
  std::map<uint64_t, int> session_fds ARCHIS_GUARDED_BY(mu);
  std::vector<uint64_t> finished ARCHIS_GUARDED_BY(mu);

  explicit Impl(ServerOptions o) : opts(o), queue(o.queue_capacity) {}

  // -- Session lifecycle -----------------------------------------------------

  /// Joins session threads that have announced completion. Called from
  /// the accept loops and from Stop; bounds the registry to live
  /// sessions plus a handful of just-finished ones.
  void ReapFinished() {
    std::vector<std::thread> done;
    {
      MutexLock l(mu);
      for (uint64_t id : finished) {
        auto it = sessions.find(id);
        if (it == sessions.end()) continue;
        done.push_back(std::move(it->second));
        sessions.erase(it);
      }
      finished.clear();
    }
    for (std::thread& t : done) t.join();
  }

  size_t LiveSessions() {
    MutexLock l(mu);
    return sessions.size();
  }

  void SpawnSession(int fd, bool http) {
    const uint64_t id = next_session.fetch_add(1, std::memory_order_relaxed);
    ConnectionsTotal()->Inc();
    ConnectionsGauge()->Add(1);
    MutexLock l(mu);
    session_fds[id] = fd;
    sessions[id] = std::thread([this, id, fd, http] {
      if (http) {
        HttpSession(fd);
      } else {
        BinarySession(fd);
      }
      ::close(fd);
      ConnectionsGauge()->Add(-1);
      // The analyzer reads this lambda as part of SpawnSession, but it runs
      // on the session thread after the spawning scope (and its MutexLock)
      // are long gone.
      // archis-analyze: allow(lock-cycle) -- lambda body runs on the session thread, not under the spawn-time lock
      MutexLock inner(mu);
      session_fds.erase(id);
      finished.push_back(id);
    });
  }

  // -- Request processing ----------------------------------------------------

  /// Admits one query/update request and waits for its response. All
  /// admission-control outcomes are explicit responses — a shed request
  /// is answered kOverloaded, never dropped.
  Response Submit(FrameType type, std::string body,
                  std::optional<Clock::time_point> deadline, const char* kind) {
    if (stopping.load(std::memory_order_relaxed)) {
      return {WireStatus::kShuttingDown, "server is shutting down"};
    }
    auto req = std::make_shared<PendingRequest>();
    req->type = type;
    req->body = std::move(body);
    req->deadline = deadline;
    req->seq = next_seq.fetch_add(1, std::memory_order_relaxed);
    req->kind = kind;
    std::future<Response> future = req->promise.get_future();
    switch (queue.TryPush(req)) {
      case PushOutcome::kAdmitted:
        break;
      case PushOutcome::kFull:
        ShedCounter()->Inc();
        return {WireStatus::kOverloaded,
                "admission queue full (capacity " +
                    std::to_string(opts.queue_capacity) + "); retry later"};
      case PushOutcome::kClosed:
        return {WireStatus::kShuttingDown, "server is shutting down"};
    }
    // The worker pool always resolves admitted requests, including during
    // shutdown (Stop closes the queue, then workers drain it).
    return future.get();
  }

  std::optional<Clock::time_point> DeadlineFor(uint32_t request_ms) {
    const uint32_t ms =
        request_ms > 0 ? request_ms : opts.default_deadline_ms;
    if (ms == 0) return std::nullopt;
    return Clock::now() + std::chrono::milliseconds(ms);
  }

  void WorkerLoop() {
    while (std::shared_ptr<PendingRequest> req = queue.Pop()) {
      if (opts.test_delay_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(opts.test_delay_ms));
      }
      const auto start = Clock::now();
      fr::Record(fr::EventType::kRequestBegin, req->seq, 0, 0, req->kind);
      Response resp = ExecuteRequest(*req);
      const auto dur = Clock::now() - start;
      const double secs =
          std::chrono::duration_cast<std::chrono::duration<double>>(dur)
              .count();
      RequestSeconds()->Observe(secs);
      RequestWindow()->Observe(secs);
      if (resp.status == WireStatus::kDeadlineExceeded) {
        DeadlineCounter()->Inc();
      }
      fr::Record(
          fr::EventType::kRequestEnd, req->seq,
          static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(dur)
                  .count()),
          static_cast<uint32_t>(resp.status), req->kind);
      req->promise.set_value(std::move(resp));
    }
  }

  Response ExecuteRequest(const PendingRequest& req) {
    // A request can go stale while queued; answer without executing.
    if (req.deadline.has_value() && Clock::now() >= *req.deadline) {
      return {WireStatus::kDeadlineExceeded,
              "deadline expired while queued for a worker"};
    }
    if (req.type == FrameType::kQuery) {
      core::QueryOptions qopts;
      qopts.deadline = req.deadline;
      Result<core::QueryResult> result = db->Query(req.body, qopts);
      if (!result.ok()) {
        return {WireStatusOf(result.status().code()),
                result.status().message()};
      }
      return {WireStatus::kOk, xml::Serialize(result->xml)};
    }
    size_t applied = 0;
    Status st = ApplyUpdateBatch(db, req.body, &applied);
    if (!st.ok()) return {WireStatusOf(st.code()), st.message()};
    return {WireStatus::kOk, "committed " + std::to_string(applied)};
  }

  // -- Binary protocol session -----------------------------------------------

  void BinarySession(int fd) {
    while (WaitReadable(fd, stopping)) {
      Result<Frame> frame = ReadFrame(fd);
      if (!frame.ok()) {
        if (frame.status().code() == StatusCode::kInvalidArgument) {
          // Oversized length prefix: tell the peer, then drop the
          // connection — the stream is unrecoverable past a bad prefix.
          ProtocolErrorCounter()->Inc();
          IgnoreStatus(
              WriteFrame(fd, static_cast<uint8_t>(WireStatus::kInvalidArgument),
                         frame.status().message()));
        } else if (frame.status().code() != StatusCode::kAborted) {
          ProtocolErrorCounter()->Inc();
        }
        return;
      }
      Response resp;
      switch (static_cast<FrameType>(frame->type)) {
        case FrameType::kPing:
          RequestsCounter("ping")->Inc();
          resp = {WireStatus::kOk, "pong"};
          break;
        case FrameType::kQuery: {
          RequestsCounter("query")->Inc();
          Result<std::pair<uint32_t, std::string>> q =
              DecodeQueryPayload(frame->payload);
          if (!q.ok()) {
            ProtocolErrorCounter()->Inc();
            resp = {WireStatus::kInvalidArgument, q.status().message()};
            break;
          }
          resp = Submit(FrameType::kQuery, std::move(q->second),
                        DeadlineFor(q->first), "query");
          break;
        }
        case FrameType::kUpdateBatch:
          RequestsCounter("update")->Inc();
          resp = Submit(FrameType::kUpdateBatch, std::move(frame->payload),
                        DeadlineFor(0), "update");
          break;
        default:
          // Garbage type byte: the stream is desynchronized; answer and
          // close rather than guessing at framing.
          ProtocolErrorCounter()->Inc();
          IgnoreStatus(WriteFrame(
              fd, static_cast<uint8_t>(WireStatus::kInvalidArgument),
              "unknown frame type " + std::to_string(frame->type)));
          return;
      }
      if (!WriteFrame(fd, static_cast<uint8_t>(resp.status), resp.payload)
               .ok()) {
        return;  // peer went away; response is undeliverable
      }
    }
  }

  // -- HTTP/1.0 shim ---------------------------------------------------------

  void HttpSession(int fd) {
    // Read the request head (cap 64 KiB), then the body per
    // Content-Length (cap kMaxFrameBytes).
    std::string buf;
    size_t head_end = std::string::npos;
    while (head_end == std::string::npos) {
      if (buf.size() > 64 * 1024 || !WaitReadable(fd, stopping)) return;
      char chunk[4096];
      const ssize_t r = ::read(fd, chunk, sizeof(chunk));
      if (r <= 0) {
        if (r < 0 && errno == EINTR) continue;
        return;
      }
      buf.append(chunk, static_cast<size_t>(r));
      head_end = buf.find("\r\n\r\n");
    }
    const std::string head = buf.substr(0, head_end);
    std::string body = buf.substr(head_end + 4);

    std::istringstream head_stream(head);
    std::string method, path, version;
    head_stream >> method >> path >> version;

    size_t content_length = 0;
    std::string line;
    std::getline(head_stream, line);  // rest of the request line
    while (std::getline(head_stream, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      const size_t colon = line.find(':');
      if (colon == std::string::npos) continue;
      std::string name = line.substr(0, colon);
      for (char& c : name) c = static_cast<char>(std::tolower(c));
      if (name == "content-length") {
        std::string value = line.substr(colon + 1);
        const size_t ws = value.find_first_not_of(" \t");
        value = ws == std::string::npos ? "" : value.substr(ws);
        Result<int64_t> n = ParseInt64(value);
        if (!n.ok()) {
          WriteHttp(fd, WireStatus::kInvalidArgument,
                    "bad Content-Length: " + n.status().message());
          return;
        }
        if (*n < 0 || static_cast<uint64_t>(*n) > kMaxFrameBytes) {
          WriteHttp(fd, WireStatus::kInvalidArgument, "bad Content-Length");
          return;
        }
        content_length = static_cast<size_t>(*n);
      }
    }
    while (body.size() < content_length) {
      if (!WaitReadable(fd, stopping)) return;
      char chunk[4096];
      const ssize_t r = ::read(fd, chunk, sizeof(chunk));
      if (r <= 0) {
        if (r < 0 && errno == EINTR) continue;
        return;
      }
      body.append(chunk, static_cast<size_t>(r));
    }

    if (method == "GET" && path == "/metrics") {
      RequestsCounter("http_metrics")->Inc();
      WriteHttp(fd, WireStatus::kOk, core::ArchIS::DumpMetrics());
      return;
    }
    if (method == "POST" && path == "/query") {
      RequestsCounter("http_query")->Inc();
      Response resp =
          Submit(FrameType::kQuery, std::move(body), DeadlineFor(0), "query");
      WriteHttp(fd, resp.status, resp.payload);
      return;
    }
    WriteHttp(fd, WireStatus::kNotFound,
              "no route for " + method + " " + path);
  }

  void WriteHttp(int fd, WireStatus status, const std::string& body) {
    const char* content_type =
        status == WireStatus::kOk ? "text/plain; version=0.0.4" : "text/plain";
    std::string resp = "HTTP/1.0 " + std::string(HttpStatusLine(status)) +
                       "\r\nContent-Type: " + content_type +
                       "\r\nContent-Length: " + std::to_string(body.size()) +
                       "\r\nConnection: close\r\n";
    if (status == WireStatus::kOverloaded) resp += "Retry-After: 1\r\n";
    resp += "\r\n";
    resp += body;
    // Best effort: an HTTP client that vanished mid-response is its own
    // problem.
    IgnoreStatus(WriteFull(fd, resp.data(), resp.size()));
  }

  // -- Accept loops ----------------------------------------------------------

  void AcceptLoop(int lfd, bool http) {
    while (!stopping.load(std::memory_order_relaxed)) {
      pollfd p{};
      p.fd = lfd;
      p.events = POLLIN;
      const int r = ::poll(&p, 1, 200);
      if (r < 0 && errno != EINTR) break;
      if (r <= 0) {
        ReapFinished();
        continue;
      }
      const int fd = ::accept(lfd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        break;  // listener closed (shutdown) or fatal
      }
      if (stopping.load(std::memory_order_relaxed)) {
        ::close(fd);
        break;
      }
      if (LiveSessions() >= opts.max_connections) {
        // Connection-level admission control: answer, count, close.
        ShedCounter()->Inc();
        if (http) {
          WriteHttp(fd, WireStatus::kOverloaded, "too many connections");
        } else {
          IgnoreStatus(WriteFrame(fd,
                                  static_cast<uint8_t>(WireStatus::kOverloaded),
                                  "too many connections; retry later"));
        }
        ::close(fd);
        continue;
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      SpawnSession(fd, http);
      ReapFinished();
    }
  }

  // -- Shutdown --------------------------------------------------------------

  void StopAll() {
    if (stopped.exchange(true)) return;
    stopping.store(true, std::memory_order_relaxed);
    // 1. Stop accepting: close the listeners; the accept loops' poll sees
    //    the close (or the 200 ms tick sees the flag) and exits.
    if (listen_fd >= 0) ::shutdown(listen_fd, SHUT_RDWR);
    if (http_fd >= 0) ::shutdown(http_fd, SHUT_RDWR);
    if (accept_thread.joinable()) accept_thread.join();
    if (http_accept_thread.joinable()) http_accept_thread.join();
    if (listen_fd >= 0) ::close(listen_fd);
    if (http_fd >= 0) ::close(http_fd);
    listen_fd = http_fd = -1;
    // 2. Close the queue: new submissions answer kShuttingDown; workers
    //    drain everything already admitted, then exit. Every admitted
    //    request's promise is resolved before any worker exits.
    queue.Close();
    for (std::thread& w : workers) w.join();
    workers.clear();
    // 3. Unblock sessions parked in poll/read and join them. Their
    //    pending responses were resolved in step 2.
    {
      MutexLock l(mu);
      for (const auto& [id, fd] : session_fds) ::shutdown(fd, SHUT_RDWR);
    }
    std::map<uint64_t, std::thread> remaining;
    {
      MutexLock l(mu);
      remaining.swap(sessions);
      finished.clear();
    }
    for (auto& [id, t] : remaining) t.join();
    logging::Info("server.stopped")
        .Kv("port", bound_port)
        .Kv("http_port", bound_http_port);
  }
};

ArchisServer::ArchisServer(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

ArchisServer::~ArchisServer() { impl_->StopAll(); }

Status ArchisServer::Stop() {
  impl_->StopAll();
  return Status::OK();
}

int ArchisServer::port() const { return impl_->bound_port; }
int ArchisServer::http_port() const { return impl_->bound_http_port; }

Result<std::unique_ptr<ArchisServer>> ArchisServer::Start(
    core::ArchIS* db, ServerOptions options) {
  if (db == nullptr) {
    return Status::InvalidArgument("ArchisServer needs an ArchIS instance");
  }
  if (options.workers <= 0) {
    return Status::InvalidArgument("workers must be positive");
  }
  if (options.queue_capacity == 0) {
    return Status::InvalidArgument("queue_capacity must be positive");
  }
  auto impl = std::make_unique<ArchisServer::Impl>(options);
  impl->db = db;
  ARCHIS_ASSIGN_OR_RETURN(impl->listen_fd,
                          Listen(options.host, options.port));
  impl->bound_port = BoundPort(impl->listen_fd);
  if (options.http_port >= 0) {
    Result<int> http = Listen(options.host, options.http_port);
    if (!http.ok()) {
      ::close(impl->listen_fd);
      return http.status();
    }
    impl->http_fd = *http;
    impl->bound_http_port = BoundPort(impl->http_fd);
  }
  for (int i = 0; i < options.workers; ++i) {
    impl->workers.emplace_back([p = impl.get()] { p->WorkerLoop(); });
  }
  impl->accept_thread =
      std::thread([p = impl.get()] { p->AcceptLoop(p->listen_fd, false); });
  if (impl->http_fd >= 0) {
    impl->http_accept_thread =
        std::thread([p = impl.get()] { p->AcceptLoop(p->http_fd, true); });
  }
  logging::Info("server.started")
      .Kv("port", impl->bound_port)
      .Kv("http_port", impl->bound_http_port)
      .Kv("workers", options.workers)
      .Kv("queue_capacity", static_cast<uint64_t>(options.queue_capacity));
  return std::unique_ptr<ArchisServer>(new ArchisServer(std::move(impl)));
}

}  // namespace archis::server
