// Wire protocol of archisd (DESIGN.md §15).
//
// Both directions use the same length-prefixed frame:
//
//   [4 bytes LE  payload_len] [1 byte type/status] [payload_len bytes]
//
// Requests carry a FrameType byte; responses carry a WireStatus byte and
// the payload is either the result document (kOk) or the error message.
// The length covers only the payload, not the type byte, and is validated
// against kMaxFrameBytes BEFORE any allocation: a peer claiming a 2 GiB
// frame gets an error response and a closed connection, not a 2 GiB
// buffer.
//
// Query request payload:   [4 bytes LE deadline_ms (0 = server default)]
//                          [XQuery text]
// Update request payload:  newline-separated script, lines of
//                          `advance YYYY-MM-DD`,
//                          `insert rel|v1|v2|...` (full row),
//                          `update rel|v1|v2|...` (full row; key columns
//                          identify the current version), and
//                          `delete rel|k1|k2|...` (key values only).
//                          The whole batch commits as one transaction.
// Ping payload:            empty; the response payload is "pong".
#ifndef ARCHIS_SERVER_PROTOCOL_H_
#define ARCHIS_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace archis::server {

/// Hard ceiling on one frame's payload. Large enough for any Table-3
/// result document, small enough that a hostile length prefix cannot make
/// the server allocate unbounded memory.
constexpr uint32_t kMaxFrameBytes = 4u << 20;  // 4 MiB

/// Request frame types.
enum class FrameType : uint8_t {
  kPing = 1,
  kQuery = 2,
  kUpdateBatch = 3,
};

/// Response status byte. A stable wire enum, mapped explicitly to and
/// from StatusCode — never a raw cast of the in-process enum, whose
/// numbering is free to change.
enum class WireStatus : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kParseError = 3,
  kUnsupported = 4,
  kConflict = 5,
  /// Admission control shed the request (queue full / too many
  /// connections). Retryable after backoff.
  kOverloaded = 6,
  /// The request's deadline passed before it completed.
  kDeadlineExceeded = 7,
  /// The server is draining for shutdown and refused new work.
  kShuttingDown = 8,
  kInternal = 9,
};

/// StatusCode -> wire byte (unknown codes collapse to kInternal).
WireStatus WireStatusOf(StatusCode code);

/// Wire byte -> StatusCode for the client's reconstructed Status.
/// kShuttingDown maps to kAborted (the work never started).
StatusCode StatusCodeOfWire(uint8_t wire);

/// Rebuilds a Status from a non-OK response frame (wire byte + message
/// payload). A kOk byte yields OK with the message dropped.
Status StatusFromWire(uint8_t wire, std::string message);

/// Human-readable name ("Ok", "Overloaded", ...).
const char* WireStatusName(WireStatus s);

/// One parsed frame (request or response; `type` is FrameType or
/// WireStatus depending on direction).
struct Frame {
  uint8_t type = 0;
  std::string payload;
};

/// Reads exactly `n` bytes, retrying on EINTR and short reads. A clean
/// EOF before the first byte returns kAborted ("peer closed"); EOF
/// mid-buffer returns kIOError ("truncated").
[[nodiscard]] Status ReadFull(int fd, void* buf, size_t n);

/// Writes exactly `n` bytes, retrying on EINTR and short writes.
[[nodiscard]] Status WriteFull(int fd, const void* buf, size_t n);

/// Reads one frame. Rejects payload lengths above kMaxFrameBytes with
/// kInvalidArgument before allocating anything.
Result<Frame> ReadFrame(int fd);

/// Writes one frame (length prefix + type byte + payload).
[[nodiscard]] Status WriteFrame(int fd, uint8_t type, std::string_view payload);

/// Encodes a query request payload (deadline prefix + text).
std::string EncodeQueryPayload(uint32_t deadline_ms, std::string_view xquery);

/// Splits a query request payload. Fails on a short (<4 byte) payload.
Result<std::pair<uint32_t, std::string>> DecodeQueryPayload(
    std::string_view payload);

}  // namespace archis::server

#endif  // ARCHIS_SERVER_PROTOCOL_H_
