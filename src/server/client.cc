#include "server/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace archis::server {
namespace {

/// Non-blocking connect with a poll-based timeout, then back to blocking.
Result<int> ConnectTo(const std::string& host, int port, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address '" + host + "'");
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno == EINPROGRESS) {
    pollfd p{};
    p.fd = fd;
    p.events = POLLOUT;
    rc = ::poll(&p, 1, timeout_ms);
    if (rc <= 0) {
      ::close(fd);
      return Status::IOError(rc == 0 ? "connect timed out"
                                     : std::string("connect poll: ") +
                                           std::strerror(errno));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      ::close(fd);
      return Status::IOError(std::string("connect: ") + std::strerror(err));
    }
  } else if (rc != 0) {
    const Status st =
        Status::IOError(std::string("connect: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  ::fcntl(fd, F_SETFL, flags);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void SetIoTimeout(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

ArchisClient::ArchisClient(ClientOptions options)
    : opts_(std::move(options)) {}

ArchisClient::~ArchisClient() { Close(); }

Status ArchisClient::Connect() {
  if (fd_ >= 0) return Status::OK();
  ARCHIS_ASSIGN_OR_RETURN(
      fd_, ConnectTo(opts_.host, opts_.port, opts_.connect_timeout_ms));
  if (opts_.io_timeout_ms > 0) SetIoTimeout(fd_, opts_.io_timeout_ms);
  return Status::OK();
}

void ArchisClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::string> ArchisClient::Roundtrip(FrameType type,
                                            const std::string& payload) {
  for (int attempt = 0;; ++attempt) {
    Status st = Connect();
    if (st.ok()) {
      st = WriteFrame(fd_, static_cast<uint8_t>(type), payload);
      if (st.ok()) {
        Result<Frame> resp = ReadFrame(fd_);
        if (resp.ok()) {
          if (resp->type == static_cast<uint8_t>(WireStatus::kOk)) {
            return std::move(resp->payload);
          }
          return StatusFromWire(resp->type, std::move(resp->payload));
        }
        st = resp.status();
      }
    }
    // IO-level failure: the connection is unusable. Retry once on a
    // fresh one when allowed; server-reported errors returned above are
    // never retried.
    Close();
    if (!opts_.reconnect || attempt >= 1) return st;
  }
}

Status ArchisClient::Ping() {
  return Roundtrip(FrameType::kPing, "").status();
}

Result<std::string> ArchisClient::Query(const std::string& xquery,
                                        uint32_t deadline_ms) {
  return Roundtrip(FrameType::kQuery,
                   EncodeQueryPayload(deadline_ms, xquery));
}

Result<std::string> ArchisClient::UpdateBatch(const std::string& script) {
  return Roundtrip(FrameType::kUpdateBatch, script);
}

}  // namespace archis::server
