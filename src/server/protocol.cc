#include "server/protocol.h"

#include <cerrno>
#include <cstring>
#include <unistd.h>

#include <utility>

namespace archis::server {

WireStatus WireStatusOf(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:               return WireStatus::kOk;
    case StatusCode::kInvalidArgument:  return WireStatus::kInvalidArgument;
    case StatusCode::kNotFound:         return WireStatus::kNotFound;
    case StatusCode::kParseError:       return WireStatus::kParseError;
    case StatusCode::kUnsupported:      return WireStatus::kUnsupported;
    case StatusCode::kConflict:         return WireStatus::kConflict;
    case StatusCode::kOverloaded:       return WireStatus::kOverloaded;
    case StatusCode::kDeadlineExceeded: return WireStatus::kDeadlineExceeded;
    default:                            return WireStatus::kInternal;
  }
}

StatusCode StatusCodeOfWire(uint8_t wire) {
  switch (static_cast<WireStatus>(wire)) {
    case WireStatus::kOk:               return StatusCode::kOk;
    case WireStatus::kInvalidArgument:  return StatusCode::kInvalidArgument;
    case WireStatus::kNotFound:         return StatusCode::kNotFound;
    case WireStatus::kParseError:       return StatusCode::kParseError;
    case WireStatus::kUnsupported:      return StatusCode::kUnsupported;
    case WireStatus::kConflict:         return StatusCode::kConflict;
    case WireStatus::kOverloaded:       return StatusCode::kOverloaded;
    case WireStatus::kDeadlineExceeded: return StatusCode::kDeadlineExceeded;
    case WireStatus::kShuttingDown:     return StatusCode::kAborted;
    case WireStatus::kInternal:         return StatusCode::kInternal;
  }
  return StatusCode::kInternal;
}

Status StatusFromWire(uint8_t wire, std::string message) {
  switch (StatusCodeOfWire(wire)) {
    case StatusCode::kOk:               return Status::OK();
    case StatusCode::kInvalidArgument:  return Status::InvalidArgument(std::move(message));
    case StatusCode::kNotFound:         return Status::NotFound(std::move(message));
    case StatusCode::kParseError:       return Status::ParseError(std::move(message));
    case StatusCode::kUnsupported:      return Status::Unsupported(std::move(message));
    case StatusCode::kConflict:         return Status::Conflict(std::move(message));
    case StatusCode::kOverloaded:       return Status::Overloaded(std::move(message));
    case StatusCode::kDeadlineExceeded: return Status::DeadlineExceeded(std::move(message));
    case StatusCode::kAborted:          return Status::Aborted(std::move(message));
    default:                            return Status::Internal(std::move(message));
  }
}

const char* WireStatusName(WireStatus s) {
  switch (s) {
    case WireStatus::kOk:               return "Ok";
    case WireStatus::kInvalidArgument:  return "InvalidArgument";
    case WireStatus::kNotFound:         return "NotFound";
    case WireStatus::kParseError:       return "ParseError";
    case WireStatus::kUnsupported:      return "Unsupported";
    case WireStatus::kConflict:         return "Conflict";
    case WireStatus::kOverloaded:       return "Overloaded";
    case WireStatus::kDeadlineExceeded: return "DeadlineExceeded";
    case WireStatus::kShuttingDown:     return "ShuttingDown";
    case WireStatus::kInternal:         return "Internal";
  }
  return "Unknown";
}

Status ReadFull(int fd, void* buf, size_t n) {
  char* p = static_cast<char*>(buf);
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::read(fd, p + got, n - got);
    if (r > 0) {
      got += static_cast<size_t>(r);
      continue;
    }
    if (r == 0) {
      if (got == 0) return Status::Aborted("peer closed");
      return Status::IOError("truncated frame: peer closed mid-read");
    }
    if (errno == EINTR) continue;
    return Status::IOError(std::string("read: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status WriteFull(int fd, const void* buf, size_t n) {
  const char* p = static_cast<const char*>(buf);
  size_t sent = 0;
  while (sent < n) {
    ssize_t r = ::write(fd, p + sent, n - sent);
    if (r >= 0) {
      sent += static_cast<size_t>(r);
      continue;
    }
    if (errno == EINTR) continue;
    return Status::IOError(std::string("write: ") + std::strerror(errno));
  }
  return Status::OK();
}

Result<Frame> ReadFrame(int fd) {
  unsigned char header[5];
  ARCHIS_RETURN_NOT_OK(ReadFull(fd, header, sizeof(header)));
  const uint32_t len = static_cast<uint32_t>(header[0]) |
                       static_cast<uint32_t>(header[1]) << 8 |
                       static_cast<uint32_t>(header[2]) << 16 |
                       static_cast<uint32_t>(header[3]) << 24;
  if (len > kMaxFrameBytes) {
    // Reject on the prefix alone: the claimed payload is never allocated
    // or read, so an attacker-controlled length cannot balloon memory.
    return Status::InvalidArgument("frame too large: " + std::to_string(len) +
                                   " bytes (max " +
                                   std::to_string(kMaxFrameBytes) + ")");
  }
  Frame frame;
  frame.type = header[4];
  frame.payload.resize(len);
  if (len > 0) {
    ARCHIS_RETURN_NOT_OK(ReadFull(fd, frame.payload.data(), len));
  }
  return frame;
}

Status WriteFrame(int fd, uint8_t type, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame payload exceeds kMaxFrameBytes");
  }
  const uint32_t len = static_cast<uint32_t>(payload.size());
  std::string wire;
  wire.reserve(5 + payload.size());
  wire.push_back(static_cast<char>(len & 0xff));
  wire.push_back(static_cast<char>((len >> 8) & 0xff));
  wire.push_back(static_cast<char>((len >> 16) & 0xff));
  wire.push_back(static_cast<char>((len >> 24) & 0xff));
  wire.push_back(static_cast<char>(type));
  wire.append(payload);
  return WriteFull(fd, wire.data(), wire.size());
}

std::string EncodeQueryPayload(uint32_t deadline_ms, std::string_view xquery) {
  std::string payload;
  payload.reserve(4 + xquery.size());
  payload.push_back(static_cast<char>(deadline_ms & 0xff));
  payload.push_back(static_cast<char>((deadline_ms >> 8) & 0xff));
  payload.push_back(static_cast<char>((deadline_ms >> 16) & 0xff));
  payload.push_back(static_cast<char>((deadline_ms >> 24) & 0xff));
  payload.append(xquery);
  return payload;
}

Result<std::pair<uint32_t, std::string>> DecodeQueryPayload(
    std::string_view payload) {
  if (payload.size() < 4) {
    return Status::InvalidArgument(
        "query payload shorter than its 4-byte deadline prefix");
  }
  const auto* p = reinterpret_cast<const unsigned char*>(payload.data());
  const uint32_t deadline_ms = static_cast<uint32_t>(p[0]) |
                               static_cast<uint32_t>(p[1]) << 8 |
                               static_cast<uint32_t>(p[2]) << 16 |
                               static_cast<uint32_t>(p[3]) << 24;
  return std::make_pair(deadline_ms, std::string(payload.substr(4)));
}

}  // namespace archis::server
