// HR audit scenario: the workload the paper's introduction motivates —
// an organisation that must answer "as of" questions about personnel data
// long after the fact (compliance, payroll disputes, audit trails).
//
// Generates a multi-year employee history, then answers typical audit
// questions: who was in department X on a date, an employee's full salary
// trajectory, the evolution of the average salary, and who was promoted
// without a raise.
//
//   $ ./build/examples/hr_audit
#include <cstdio>

#include "archis/archis.h"
#include "workload/employee_workload.h"
#include "xml/serializer.h"

using archis::Date;
using archis::TimeInterval;
using archis::core::ArchIS;
using archis::core::ArchISOptions;

int main() {
  // Ten years of simulated company history.
  ArchISOptions options;
  options.segment.umin = 0.4;
  ArchIS db(options, Date::FromYmd(1985, 1, 1));
  archis::workload::WorkloadConfig config;
  config.initial_employees = 80;
  config.years = 10;
  archis::workload::EmployeeWorkload workload(config);
  auto stats = workload.Generate(&db);
  if (!stats.ok()) {
    std::fprintf(stderr, "workload: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("Generated %llu inserts, %llu updates, %llu deletes over "
              "%d years; %d employees remain.\n\n",
              static_cast<unsigned long long>(stats->inserts),
              static_cast<unsigned long long>(stats->updates),
              static_cast<unsigned long long>(stats->deletes),
              config.years, stats->final_employee_count);

  // Audit question 1: headcount of d01 on 1990-06-30 (translated query).
  auto headcount = db.Query(
      "for $e in doc(\"employees.xml\")/employees/employee/deptno"
      "[. = \"d01\" and tstart(.) <= xs:date(\"1990-06-30\") and "
      "tend(.) >= xs:date(\"1990-06-30\")] return $e");
  if (!headcount.ok()) {
    std::fprintf(stderr, "q1: %s\n", headcount.status().ToString().c_str());
    return 1;
  }
  std::printf("Q: Who was in d01 on 1990-06-30?  A: %zu employees "
              "(via %s)\n",
              headcount->xml->children().size(),
              headcount->path == archis::core::QueryPath::kTranslated
                  ? "SQL/XML"
                  : "native XQuery");

  // Audit question 2: the probe employee's full salary trajectory.
  char q2[256];
  std::snprintf(q2, sizeof(q2),
                "element salary_history{ for $s in doc(\"employees.xml\")/"
                "employees/employee[id=%lld]/salary return $s }",
                static_cast<long long>(workload.probe_id()));
  auto history = db.Query(q2);
  if (!history.ok()) return 1;
  auto steps =
      history->xml->ChildElements()[0]->ChildrenNamed("salary");
  std::printf("Q: Salary trajectory of employee %lld?  A: %zu versions, "
              "%s -> %s\n",
              static_cast<long long>(workload.probe_id()), steps.size(),
              steps.empty() ? "?" : steps.front()->StringValue().c_str(),
              steps.empty() ? "?" : steps.back()->StringValue().c_str());

  // Audit question 3: the evolution of the average salary (temporal
  // aggregate, QUERY 5 of the paper). Printed as decade checkpoints.
  auto avg = db.Query(
      "let $s := doc(\"employees.xml\")/employees/employee/salary "
      "return tavg($s)");
  if (!avg.ok()) return 1;
  auto tavg_steps = avg->xml->ChildrenNamed("tavg");
  std::printf("Q: How did the average salary evolve?  A: %zu steps; "
              "sampled:\n", tavg_steps.size());
  for (size_t i = 0; i < tavg_steps.size();
       i += std::max<size_t>(1, tavg_steps.size() / 5)) {
    std::printf("   %s..%s  avg=%s\n",
                tavg_steps[i]->Attr("tstart")->c_str(),
                tavg_steps[i]->Attr("tend")->c_str(),
                tavg_steps[i]->StringValue().c_str());
  }

  // Audit question 4 (native fallback: restructuring): longest period the
  // probe employee kept the same title AND department.
  char q4[384];
  std::snprintf(q4, sizeof(q4),
                "for $e in doc(\"employees.xml\")/employees/employee"
                "[id=%lld] let $o := restructure($e/deptno, $e/title) "
                "return max($o)",
                static_cast<long long>(workload.probe_id()));
  auto stable = db.Query(q4);
  if (!stable.ok()) return 1;
  std::printf("Q: Longest stable (title, dept) period for %lld?  "
              "A: %s days (via %s)\n",
              static_cast<long long>(workload.probe_id()),
              stable->xml->StringValue().c_str(),
              stable->path == archis::core::QueryPath::kTranslated
                  ? "SQL/XML"
                  : "native XQuery");

  // Storage accounting: the cost of keeping all this history.
  std::printf("\nHistory storage: %.1f KiB across H-tables (current DB "
              "holds only the latest state).\n",
              static_cast<double>(db.HistoryStorageBytes()) / 1024.0);
  return 0;
}
