// Quickstart: build a transaction-time temporal database, replay the
// paper's running example (Bob from Table 1), and query its history.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "archis/archis.h"
#include "xml/serializer.h"

using archis::Date;
using archis::Status;
using archis::core::ArchIS;
using archis::core::ArchISOptions;
using archis::core::QueryPath;
using archis::minirel::DataType;
using archis::minirel::Schema;
using archis::minirel::Tuple;
using archis::minirel::Value;

namespace {

void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  // 1. An ArchIS instance: current database + H-tables, with segment
  //    clustering at the paper's U_min = 0.4.
  ArchISOptions options;
  options.segment.umin = 0.4;
  ArchIS db(options, Date::FromYmd(1995, 1, 1));

  // 2. Register a relation. The spec names the XML view: queries see the
  //    history as doc("employees.xml")/employees/employee/... (root and
  //    entity tags default from the relation name).
  archis::core::RelationSpec spec;
  spec.name = "employees";
  spec.schema = Schema({{"id", DataType::kInt64},
                        {"name", DataType::kString},
                        {"salary", DataType::kInt64},
                        {"title", DataType::kString},
                        {"deptno", DataType::kString}});
  spec.key_columns = {"id"};
  spec.doc_name = "employees.xml";
  Check(db.CreateRelation(spec), "CreateRelation");

  // 3. Ordinary DML on the current table; every change is transparently
  //    archived into the H-tables at the transaction clock.
  auto bob = [](int64_t salary, const char* title, const char* dept) {
    return Tuple{Value(int64_t{1001}), Value("Bob"), Value(salary),
                 Value(title), Value(dept)};
  };
  Check(db.Insert("employees", bob(60000, "Engineer", "d01")), "insert");
  Check(db.AdvanceClock(Date::FromYmd(1995, 6, 1)), "clock");
  Check(db.Update("employees", {Value(int64_t{1001})},
                  bob(70000, "Engineer", "d01")),
        "raise");
  Check(db.AdvanceClock(Date::FromYmd(1995, 10, 1)), "clock");
  Check(db.Update("employees", {Value(int64_t{1001})},
                  bob(70000, "Sr Engineer", "d02")),
        "promotion");
  Check(db.AdvanceClock(Date::FromYmd(1996, 2, 1)), "clock");
  Check(db.Update("employees", {Value(int64_t{1001})},
                  bob(70000, "TechLeader", "d02")),
        "promotion 2");

  // 4. The temporally-grouped H-document view (paper Figure 3).
  auto doc = db.PublishHistory("employees");
  Check(doc.status(), "PublishHistory");
  archis::xml::SerializeOptions pretty;
  pretty.pretty = true;
  std::printf("H-document view of the history:\n%s\n",
              archis::xml::Serialize(*doc, pretty).c_str());

  // 5. Temporal XQuery. This one translates to SQL/XML on the H-tables.
  auto result = db.Query(
      "element title_history{ for $t in doc(\"employees.xml\")/employees/"
      "employee[name=\"Bob\"]/title return $t }");
  Check(result.status(), "Query");
  std::printf("QUERY 1 executed via %s.\n",
              result->path == QueryPath::kTranslated
                  ? "translation to SQL/XML"
                  : "native XQuery fallback");
  std::printf("Generated SQL/XML:\n%s\n\n", result->sql.c_str());
  std::printf("Result:\n%s\n",
              archis::xml::Serialize(result->xml, pretty).c_str());

  // 6. Time travel: the salary Bob had on any past day.
  auto snap = db.Snapshot("employees", Date::FromYmd(1995, 7, 15));
  Check(snap.status(), "Snapshot");
  std::printf("Snapshot on 1995-07-15: %s\n",
              (*snap)[0].ToString().c_str());
  return 0;
}
