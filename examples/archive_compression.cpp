// Archive-compression scenario (paper Section 8): a long-lived archive
// whose frozen segments are BlockZIP-compressed, queried with block-pruned
// decompression — and a side-by-side with the native XML database storing
// the same history.
//
//   $ ./build/examples/archive_compression
#include <cstdio>

#include "archis/archis.h"
#include "workload/employee_workload.h"
#include "xml/serializer.h"
#include "xmldb/xml_database.h"

using archis::Date;
using archis::core::ArchIS;
using archis::core::ArchISOptions;

namespace {

ArchISOptions Opts(bool compress) {
  ArchISOptions o;
  o.segment.umin = 0.4;
  o.segment.compress = compress;
  return o;
}

uint64_t Generate(ArchIS* db) {
  archis::workload::WorkloadConfig config;
  config.initial_employees = 100;
  config.years = 12;
  archis::workload::EmployeeWorkload workload(config);
  auto stats = workload.Generate(db);
  if (!stats.ok()) {
    std::fprintf(stderr, "workload: %s\n", stats.status().ToString().c_str());
    std::exit(1);
  }
  return stats->updates;
}

}  // namespace

int main() {
  // The same 12-year history archived twice: plain and BlockZIP'd.
  ArchIS plain(Opts(false), Date::FromYmd(1985, 1, 1));
  ArchIS zipped(Opts(true), Date::FromYmd(1985, 1, 1));
  uint64_t updates = Generate(&plain);
  Generate(&zipped);
  if (!zipped.FreezeAll().ok()) return 1;  // compress the tail segment too

  // The H-document is the size yardstick (paper Figures 11/13).
  auto doc = plain.PublishHistory("employees");
  if (!doc.ok()) return 1;
  const uint64_t hdoc = archis::xml::Serialize(*doc).size();

  // A native XML DB holding the same document, compressed and not.
  archis::xmldb::XmlDatabase tamino_zip(
      archis::xmldb::StorageMode::kCompressed, plain.Now());
  archis::xmldb::XmlDatabase tamino_raw(
      archis::xmldb::StorageMode::kNative, plain.Now());
  if (!tamino_zip.PutDocument("employees.xml", *doc).ok()) return 1;
  if (!tamino_raw.PutDocument("employees.xml", *doc).ok()) return 1;

  auto ratio = [hdoc](uint64_t bytes) {
    return static_cast<double>(bytes) / static_cast<double>(hdoc);
  };
  std::printf("12 years, %llu updates; H-document = %.1f KiB\n\n",
              static_cast<unsigned long long>(updates),
              static_cast<double>(hdoc) / 1024.0);
  std::printf("Storage ratios (stored bytes / H-document bytes):\n");
  std::printf("  ArchIS H-tables, segmented:          %.2f\n",
              ratio(plain.HistoryStorageBytes()));
  std::printf("  ArchIS H-tables, BlockZIP:           %.2f\n",
              ratio(zipped.HistoryStorageBytes()));
  std::printf("  Native XML DB, compressed (Tamino):  %.2f\n",
              ratio(tamino_zip.store().TotalStoredBytes()));
  std::printf("  Native XML DB, uncompressed:         %.2f\n\n",
              ratio(tamino_raw.store().TotalStoredBytes()));

  // Queries still work on the compressed archive — and block pruning means
  // a point query touches only a handful of blocks. Count blocks via
  // decompressions + cache hits: the LRU block cache (on by default) serves
  // repeats without re-inflating them.
  auto set = zipped.archiver().htables("employees");
  auto salary = (*set)->attribute_store("salary");
  archis::core::StoreScanStats point, full;
  // Demo scans are for the stats only; an error just leaves them zero.
  archis::IgnoreStatus((*salary)->ScanId(
      100001, [](const archis::minirel::Tuple&) { return true; }, &point));
  archis::IgnoreStatus((*salary)->ScanHistory(
      [](const archis::minirel::Tuple&) { return true; }, &full));
  std::printf("Block-pruned point lookup: %llu block(s) touched; a full "
              "history scan touches %llu (%llu already cached).\n",
              static_cast<unsigned long long>(point.blocks_decompressed +
                                              point.block_cache_hits),
              static_cast<unsigned long long>(full.blocks_decompressed +
                                              full.block_cache_hits),
              static_cast<unsigned long long>(full.block_cache_hits));

  auto result = zipped.Query(
      "for $s in doc(\"employees.xml\")/employees/employee[id=100001]"
      "/salary[tstart(.) <= xs:date(\"1991-06-30\") and "
      "tend(.) >= xs:date(\"1991-06-30\")] return $s");
  if (!result.ok()) return 1;
  std::printf("Salary of employee 100001 on 1991-06-30 (from the "
              "compressed archive): %s\n",
              result->xml->StringValue().c_str());
  return 0;
}
