// Cost-based planner tests (DESIGN.md §11): statistics maintenance and
// durability (freeze, BlockZIP, checkpoint, recovery), plan-choice goldens
// including the data-shape-driven access-path flip, estimated-vs-actual
// surfacing in the query profile, and the PlanForce escape hatch.
//
// Also locks in the auto-checkpoint + crash recovery mode of the
// recovery_fuzz sweep as a deterministic regression matrix.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "archis/archis.h"
#include "archis/planner.h"
#include "common/metrics.h"
#include "workload/scripted_dml.h"
#include "xml/serializer.h"

namespace archis::core {
namespace {

using minirel::CompareOp;
using minirel::DataType;
using minirel::Schema;
using minirel::Tuple;
using minirel::Value;
using workload::RunScriptedDml;
using workload::ScriptedDmlConfig;
using workload::SerializeAllHistories;

Date D(int y, int m, int d) { return Date::FromYmd(y, m, d); }

std::string TempPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  std::remove(CheckpointPath(path).c_str());
  std::remove(CheckpointPrevPath(path).c_str());
  std::remove(CheckpointTmpPath(path).c_str());
  return path;
}

RelationSpec EmpSpec() {
  RelationSpec spec;
  spec.name = "emp";
  spec.schema = Schema({{"id", DataType::kInt64},
                        {"salary", DataType::kInt64},
                        {"title", DataType::kString}});
  spec.key_columns = {"id"};
  spec.doc_name = "emps.xml";
  spec.root_tag = "emps";
  return spec;
}

Tuple Emp(int64_t id, int64_t salary, const std::string& title) {
  return Tuple{Value(id), Value(salary), Value(title)};
}

/// The salary attribute store of `db`'s emp relation.
const SegmentedStore* SalaryStore(ArchIS* db) {
  auto set = db->archiver().htables("emp");
  EXPECT_TRUE(set.ok());
  auto store = (*set)->attribute_store("salary");
  EXPECT_TRUE(store.ok());
  return *store;
}

/// One big frozen segment: `ids` employees inserted in one period, then a
/// single freeze. Optionally BlockZIP-compressed.
std::unique_ptr<ArchIS> BuildWideShape(int ids, bool compress) {
  ArchISOptions opts;
  opts.segment.compress = compress;
  auto db = std::make_unique<ArchIS>(opts, D(2000, 1, 1));
  EXPECT_TRUE(db->CreateRelation(EmpSpec()).ok());
  for (int i = 1; i <= ids; ++i) {
    EXPECT_TRUE(db->Insert("emp", Emp(i, 100 + i, "E")).ok());
  }
  EXPECT_TRUE(db->AdvanceClock(D(2001, 1, 1)).ok());
  for (int i = 1; i <= ids; ++i) {
    EXPECT_TRUE(
        db->Update("emp", {Value(int64_t{i})}, Emp(i, 200 + i, "E")).ok());
  }
  EXPECT_TRUE(db->AdvanceClock(D(2002, 1, 1)).ok());
  EXPECT_TRUE(db->FreezeAll().ok());
  EXPECT_TRUE(db->AdvanceClock(D(2002, 1, 2)).ok());
  return db;
}

/// Many tiny frozen segments: `ids` employees, one update + freeze per
/// year over `periods` years.
std::unique_ptr<ArchIS> BuildDeepShape(int ids, int periods) {
  auto db = std::make_unique<ArchIS>(ArchISOptions{}, D(2000, 1, 1));
  EXPECT_TRUE(db->CreateRelation(EmpSpec()).ok());
  for (int i = 1; i <= ids; ++i) {
    EXPECT_TRUE(db->Insert("emp", Emp(i, 100, "E")).ok());
  }
  for (int p = 1; p <= periods; ++p) {
    EXPECT_TRUE(db->AdvanceClock(D(2000 + p, 1, 1)).ok());
    for (int i = 1; i <= ids; ++i) {
      EXPECT_TRUE(
          db->Update("emp", {Value(int64_t{i})}, Emp(i, 100 + p, "E")).ok());
    }
    EXPECT_TRUE(db->FreezeAll().ok());
  }
  EXPECT_TRUE(db->AdvanceClock(D(2000 + periods, 6, 1)).ok());
  return db;
}

/// Single-variable salary plan, optionally restricted to one object and a
/// snapshot instant.
SqlXmlPlan SalaryPlan(std::optional<int64_t> id = std::nullopt,
                      std::optional<Date> snapshot = std::nullopt) {
  SqlXmlPlan plan;
  PlanVar v;
  v.relation = "emp";
  v.attribute = "salary";
  v.id_eq = id;
  v.snapshot = snapshot;
  plan.vars.push_back(v);
  OutputSpec out;
  out.kind = OutputSpec::Kind::kElement;
  out.name = "salary";
  out.column = HColRef{0, HCol::kValue};
  plan.output = out;
  return plan;
}

// ---------------------------------------------------------------------------
// Statistics maintenance and durability
// ---------------------------------------------------------------------------

TEST(StatsCatalogTest, MaintainedIncrementallyOnUpdatePath) {
  ArchIS db(ArchISOptions{}, D(2000, 1, 1));
  ASSERT_TRUE(db.CreateRelation(EmpSpec()).ok());
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(db.Insert("emp", Emp(i, 100, "E")).ok());
  }
  ASSERT_TRUE(db.AdvanceClock(D(2001, 1, 1)).ok());
  ASSERT_TRUE(db.Update("emp", {Value(int64_t{1})}, Emp(1, 200, "E")).ok());
  const StoreStatistics& stats = SalaryStore(&db)->statistics();
  EXPECT_EQ(stats.versions_total, 4u);  // 3 inserts + 1 replacement
  EXPECT_EQ(stats.versions_open, 3u);
  EXPECT_EQ(stats.distinct_ids.Estimate(), 3u);
  EXPECT_NEAR(stats.LiveRatio(), 0.75, 1e-9);
}

TEST(StatsCatalogTest, SurviveFreeze) {
  auto db = std::make_unique<ArchIS>(ArchISOptions{}, D(2000, 1, 1));
  ASSERT_TRUE(db->CreateRelation(EmpSpec()).ok());
  for (int i = 1; i <= 10; ++i) {
    ASSERT_TRUE(db->Insert("emp", Emp(i, 100 + i, "E")).ok());
  }
  ASSERT_TRUE(db->AdvanceClock(D(2001, 1, 1)).ok());
  ASSERT_TRUE(db->Update("emp", {Value(int64_t{1})}, Emp(1, 999, "E")).ok());
  const std::string before = SalaryStore(db.get())->statistics().Encode();
  ASSERT_TRUE(db->FreezeAll().ok());
  // Freezing reorganizes physical segments; the logical statistics must
  // not move.
  EXPECT_EQ(SalaryStore(db.get())->statistics().Encode(), before);
  EXPECT_FALSE(SalaryStore(db.get())->segments().empty());
}

TEST(StatsCatalogTest, SurviveBlockZipCompression) {
  auto db = BuildWideShape(/*ids=*/60, /*compress=*/false);
  const std::string uncompressed = SalaryStore(db.get())->statistics().Encode();
  auto zipped = BuildWideShape(/*ids=*/60, /*compress=*/true);
  const SegmentedStore* store = SalaryStore(zipped.get());
  // Same logical history => identical statistics, compressed or not.
  EXPECT_EQ(store->statistics().Encode(), uncompressed);
  ASSERT_FALSE(store->segments().empty());
  EXPECT_TRUE(store->segments()[0].compressed);
  EXPECT_GT(store->segments()[0].blocks, 0u);
}

TEST(StatsCatalogTest, CheckpointManifestRoundTripsStatistics) {
  const std::string path = TempPath("planner_ckpt.wal");
  ArchISOptions opts;
  opts.wal.path = path;
  std::string expected;
  {
    auto db = ArchIS::Open(opts, D(2000, 1, 1));
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateRelation(EmpSpec()).ok());
    for (int i = 1; i <= 20; ++i) {
      ASSERT_TRUE((*db)->Insert("emp", Emp(i, 100 + i, "E")).ok());
    }
    ASSERT_TRUE((*db)->AdvanceClock(D(2001, 1, 1)).ok());
    ASSERT_TRUE(
        (*db)->Update("emp", {Value(int64_t{3})}, Emp(3, 777, "E")).ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
    expected = SalaryStore(db->get())->statistics().Encode();
  }
  auto db = ArchIS::Open(opts, D(2000, 1, 1));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  // Recovery came from the manifest; the installed statistics snapshot
  // must match the checkpointed instance byte for byte.
  EXPECT_EQ((*db)->checkpoint_seq(), 1u);
  EXPECT_EQ(SalaryStore(db->get())->statistics().Encode(), expected);
}

TEST(StatsCatalogTest, WalReplayRebuildsStatistics) {
  const std::string path = TempPath("planner_replay.wal");
  ArchISOptions opts;
  opts.wal.path = path;
  std::string expected;
  {
    auto db = ArchIS::Open(opts, D(2000, 1, 1));
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateRelation(EmpSpec()).ok());
    for (int i = 1; i <= 12; ++i) {
      ASSERT_TRUE((*db)->Insert("emp", Emp(i, 100 + i, "E")).ok());
    }
    ASSERT_TRUE((*db)->AdvanceClock(D(2001, 1, 1)).ok());
    ASSERT_TRUE(
        (*db)->Update("emp", {Value(int64_t{5})}, Emp(5, 555, "E")).ok());
    expected = SalaryStore(db->get())->statistics().Encode();
    // No checkpoint: recovery must rebuild statistics from WAL replay.
  }
  auto db = ArchIS::Open(opts, D(2000, 1, 1));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(SalaryStore(db->get())->statistics().Encode(), expected);
}

TEST(StatsCatalogTest, ZoneMapBlockCountsFeedThePlanner) {
  // Hires spread over 12 years (ids in hire order, so the id-sorted
  // BlockZIP blocks have time-correlated zone maps), everyone terminated
  // before the freeze so every version is closed.
  ArchISOptions opts;
  opts.segment.compress = true;
  // Small compressed-block target so 600 near-identical rows still split
  // into several blocks.
  opts.segment.block_size = 256;
  ArchIS db(opts, D(2000, 1, 1));
  ASSERT_TRUE(db.CreateRelation(EmpSpec()).ok());
  for (int i = 1; i <= 600; ++i) {
    if (i % 50 == 0) {
      ASSERT_TRUE(db.AdvanceClock(D(2000 + i / 50, 1, 1)).ok());
    }
    ASSERT_TRUE(db.Insert("emp", Emp(i, 100 + i, "E")).ok());
  }
  ASSERT_TRUE(db.AdvanceClock(D(2015, 1, 1)).ok());
  for (int i = 1; i <= 600; ++i) {
    ASSERT_TRUE(db.Delete("emp", {Value(int64_t{i})}).ok());
  }
  ASSERT_TRUE(db.AdvanceClock(D(2016, 1, 1)).ok());
  ASSERT_TRUE(db.FreezeAll().ok());
  const SegmentedStore* store = SalaryStore(&db);
  ASSERT_FALSE(store->segments().empty());
  const uint64_t all = store->segments()[0].blocks;
  ASSERT_GT(all, 1u);
  // No window: every block would be decompressed.
  EXPECT_EQ(store->BlocksOverlapping(0, std::nullopt), all);
  // A window before any history prunes every block ...
  EXPECT_EQ(store->BlocksOverlapping(
                0, MakeInterval(D(1990, 1, 1), D(1991, 1, 1))),
            0u);
  // ... and a window over the first hire year keeps only the early blocks
  // (partial pruning — the count the planner charges for a merge-scan).
  const uint64_t early = store->BlocksOverlapping(
      0, MakeInterval(D(2000, 1, 1), D(2000, 12, 1)));
  EXPECT_GT(early, 0u);
  EXPECT_LT(early, all);
}

// ---------------------------------------------------------------------------
// Plan-choice goldens
// ---------------------------------------------------------------------------

TEST(PlannerTest, SingleObjectLookupPicksIdIndexOnWideData) {
  auto db = BuildWideShape(/*ids=*/200, /*compress=*/false);
  SqlXmlPlan plan = SalaryPlan(/*id=*/7, /*snapshot=*/D(2000, 6, 1));
  auto physical = PlanQuery(db->archiver(), plan);
  ASSERT_TRUE(physical.ok()) << physical.status().ToString();
  // One 400-tuple segment: probing the id index beats merging the whole
  // covering segment.
  EXPECT_EQ(physical->vars[0].path, AccessPath::kIdIndex);
  EXPECT_TRUE(physical->cost_based);
  EXPECT_GT(physical->est_total_cost, 0.0);
}

TEST(PlannerTest, SameQueryFlipsToMergeScanOnDeepData) {
  // The flip: the identical query shape (single-object snapshot lookup)
  // chooses the other access path once the data is split into many tiny
  // segments — probing every segment costs more than merging the one
  // covering segment.
  metrics::Counter* flips = metrics::Registry::Global().GetCounter(
      "archis_planner_merge_beats_index_total",
      "Id-restricted variables where the merge-scan was estimated cheaper "
      "than the id index (the data-shape-driven plan flip)");
  auto db = BuildDeepShape(/*ids=*/2, /*periods=*/12);
  SqlXmlPlan plan = SalaryPlan(/*id=*/1, /*snapshot=*/D(2000, 6, 1));
  const uint64_t flips_before = flips->value();
  auto physical = PlanQuery(db->archiver(), plan);
  ASSERT_TRUE(physical.ok()) << physical.status().ToString();
  EXPECT_EQ(physical->vars[0].path, AccessPath::kSegmentMerge);
  EXPECT_EQ(flips->value(), flips_before + 1);
  // And the flipped plan still answers identically to the fixed shape.
  auto chosen = db->Execute(plan, nullptr, nullptr, PlanForce::kCostBased);
  auto fixed = db->Execute(plan, nullptr, nullptr, PlanForce::kFixed);
  ASSERT_TRUE(chosen.ok());
  ASSERT_TRUE(fixed.ok());
  EXPECT_EQ(xml::Serialize(*chosen), xml::Serialize(*fixed));
}

TEST(PlannerTest, PlanCacheReusesUntilMutationInvalidates) {
  metrics::Counter* hits = metrics::Registry::Global().GetCounter(
      "archis_planner_cache_hits_total",
      "Executions that reused a cached physical plan (same structural "
      "key, no intervening mutation)");
  metrics::Counter* misses = metrics::Registry::Global().GetCounter(
      "archis_planner_cache_misses_total",
      "Executions that ran the cost-based planner (cold or stale "
      "cache entry)");
  auto db = BuildWideShape(/*ids=*/30, /*compress=*/false);
  SqlXmlPlan plan = SalaryPlan(/*id=*/3, /*snapshot=*/D(2000, 6, 1));
  const uint64_t h0 = hits->value();
  const uint64_t m0 = misses->value();
  ASSERT_TRUE(db->Execute(plan, nullptr, nullptr, PlanForce::kCostBased).ok());
  EXPECT_EQ(misses->value(), m0 + 1);  // cold: planned
  EXPECT_EQ(hits->value(), h0);
  ASSERT_TRUE(db->Execute(plan, nullptr, nullptr, PlanForce::kCostBased).ok());
  EXPECT_EQ(misses->value(), m0 + 1);  // warm: reused
  EXPECT_EQ(hits->value(), h0 + 1);
  // A different constant is a different structural key — no false hit.
  SqlXmlPlan other = SalaryPlan(/*id=*/4, /*snapshot=*/D(2000, 6, 1));
  ASSERT_TRUE(db->Execute(other, nullptr, nullptr, PlanForce::kCostBased).ok());
  EXPECT_EQ(misses->value(), m0 + 2);
  // Any statistics-changing mutation bumps the epoch: the cached entry
  // goes stale and the same plan replans against the new statistics.
  ASSERT_TRUE(db->FreezeAll().ok());
  ASSERT_TRUE(db->Execute(plan, nullptr, nullptr, PlanForce::kCostBased).ok());
  EXPECT_EQ(misses->value(), m0 + 3);
  EXPECT_EQ(hits->value(), h0 + 1);
}

TEST(PlannerTest, FetchOrderPutsMostSelectiveVariableFirst) {
  auto db = BuildWideShape(/*ids=*/100, /*compress=*/false);
  SqlXmlPlan plan;
  PlanVar title;
  title.relation = "emp";
  title.attribute = "title";
  PlanVar salary;
  salary.relation = "emp";
  salary.attribute = "salary";
  salary.id_eq = 3;  // single object: far fewer estimated rows
  plan.vars = {title, salary};
  OutputSpec out;
  out.kind = OutputSpec::Kind::kElement;
  out.name = "t";
  out.column = HColRef{0, HCol::kValue};
  plan.output = out;
  auto physical = PlanQuery(db->archiver(), plan);
  ASSERT_TRUE(physical.ok()) << physical.status().ToString();
  ASSERT_EQ(physical->fetch_order.size(), 2u);
  EXPECT_EQ(physical->fetch_order[0], 1u);  // the id-restricted variable
  EXPECT_LT(physical->vars[1].est_rows, physical->vars[0].est_rows);
}

TEST(PlannerTest, SingleVariableAggregatePushesDownBelowTheJoin) {
  auto db = BuildWideShape(/*ids=*/50, /*compress=*/false);
  SqlXmlPlan plan = SalaryPlan();
  plan.aggregate = PlanAggregate::kCount;
  plan.output.kind = OutputSpec::Kind::kElement;
  plan.output.name = "count";
  auto physical = PlanQuery(db->archiver(), plan);
  ASSERT_TRUE(physical.ok()) << physical.status().ToString();
  EXPECT_TRUE(physical->stream_aggregate);
  // Pushed-down and buffered pipelines must agree on the answer.
  auto pushed = db->Execute(plan, nullptr, nullptr, PlanForce::kCostBased);
  auto fixed = db->Execute(plan, nullptr, nullptr, PlanForce::kFixed);
  ASSERT_TRUE(pushed.ok());
  ASSERT_TRUE(fixed.ok());
  EXPECT_EQ(xml::Serialize(*pushed), xml::Serialize(*fixed));
}

// ---------------------------------------------------------------------------
// Surfacing: PlanForce, PlanStats, EXPLAIN profile
// ---------------------------------------------------------------------------

TEST(PlannerSurfacingTest, ForcePlanPinsEitherShapeWithIdenticalAnswers) {
  auto db = BuildDeepShape(/*ids=*/4, /*periods=*/6);
  const std::string q =
      "for $s in doc(\"emps.xml\")/emps/emp/salary return $s";
  QueryOptions cost;
  cost.force_plan = PlanForce::kCostBased;
  QueryOptions fixed;
  fixed.force_plan = PlanForce::kFixed;
  auto a = db->Query(q, cost);
  auto b = db->Query(q, fixed);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_EQ(a->path, QueryPath::kTranslated);
  EXPECT_EQ(xml::Serialize(a->xml), xml::Serialize(b->xml));
  EXPECT_TRUE(a->stats.cost_based_plan);
  EXPECT_FALSE(b->stats.cost_based_plan);
  EXPECT_GT(a->stats.est_cost, 0.0);
  EXPECT_EQ(a->stats.result_rows, b->stats.result_rows);
}

TEST(PlannerSurfacingTest, ProfileReportsEstimatedVsActualRows) {
  auto db = BuildDeepShape(/*ids=*/4, /*periods=*/6);
  QueryOptions opts;
  opts.collect_profile = true;
  auto result = db->Query(
      "for $s in doc(\"emps.xml\")/emps/emp/salary return $s", opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->path, QueryPath::kTranslated);
  ASSERT_TRUE(result->profile.has_value());
  const trace::Span* execute =
      trace::FindSpan(result->profile->root, "execute");
  ASSERT_NE(execute, nullptr);
  bool saw_est = false, saw_actual = false;
  for (const auto& [key, value] : execute->notes) {
    if (key == "est_rows") saw_est = true;
    if (key == "actual_rows") {
      saw_actual = true;
      EXPECT_EQ(value, std::to_string(result->stats.result_rows));
    }
  }
  EXPECT_TRUE(saw_est);
  EXPECT_TRUE(saw_actual);
  // The plan span renders the physical shape chosen by the planner.
  const trace::Span* plan = trace::FindSpan(result->profile->root, "plan");
  ASSERT_NE(plan, nullptr);
  bool saw_physical = false;
  for (const auto& [key, value] : plan->notes) {
    if (key == "physical") {
      saw_physical = true;
      EXPECT_NE(value.find("cost-based"), std::string::npos) << value;
    }
  }
  EXPECT_TRUE(saw_physical);
  // Actual rows also land in the EXPLAIN rendering.
  EXPECT_NE(result->profile->Render().find("actual_rows"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Recovery regression: the auto-checkpoint + crash mode of recovery_fuzz,
// pinned as a deterministic matrix.
// ---------------------------------------------------------------------------

TEST(AutoCheckpointCrashRegression, RecoversToDurablePrefixAcrossMatrix) {
  const uint32_t seeds[] = {7, 23, 41};
  const uint64_t fail_offsets[] = {3000, 9000, 17000};
  for (uint32_t seed : seeds) {
    for (uint64_t fail_at : fail_offsets) {
      const std::string path = TempPath("planner_autockpt_" +
                                        std::to_string(seed) + "_" +
                                        std::to_string(fail_at) + ".wal");
      ArchISOptions opts;
      opts.wal.path = path;
      opts.wal.checkpoint_after_bytes = 4096;
      opts.wal.fail_after_bytes = fail_at;
      ArchIS shadow(ArchISOptions{}, D(1995, 1, 1));
      {
        auto db = ArchIS::Open(opts, D(1995, 1, 1));
        ASSERT_TRUE(db.ok()) << db.status().ToString();
        ScriptedDmlConfig cfg;
        cfg.seed = seed;
        cfg.transactions = 24;
        auto run = RunScriptedDml(db->get(), &shadow, cfg);
        ASSERT_TRUE(run.ok()) << run.status().ToString();
      }
      opts.wal.fail_after_bytes = 0;
      auto recovered = ArchIS::Open(opts, D(1995, 1, 1));
      ASSERT_TRUE(recovered.ok())
          << "seed=" << seed << " fail_at=" << fail_at << ": "
          << recovered.status().ToString();
      EXPECT_EQ(SerializeAllHistories(recovered->get()),
                SerializeAllHistories(&shadow))
          << "seed=" << seed << " fail_at=" << fail_at;
    }
  }
}

}  // namespace
}  // namespace archis::core
