// Tests for the always-on flight recorder (common/flight_recorder.h):
// concurrent lock-free appends with ring wrap-around, draining while
// writers are live, cross-thread timestamp ordering, Chrome trace JSON
// and `.crashdump` well-formedness (validated by actually parsing them
// with common/json.h), and the slow-query log threshold end to end.
//
// The concurrency tests here are the TSan target for the seqlock: run
// under scripts/check.sh's TSan build, a data race in the ring protocol
// fails tier-1 verification.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "archis/archis.h"
#include "common/flight_recorder.h"
#include "common/json.h"
#include "common/log.h"
#include "minirel/schema.h"
#include "minirel/value.h"

namespace archis {
namespace {

using core::ArchIS;
using core::ArchISOptions;
using core::QueryOptions;
using core::RelationSpec;
using json::Value;

// Events recorded by other tests (or fixture setup) linger in the
// per-thread rings; each test starts from a clean slate.
class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fr::SetEnabled(true);
    fr::ResetForTest();
  }
  void TearDown() override {
    fr::SetEnabled(true);
    fr::ResetForTest();
  }
};

class LogCapture {
 public:
  LogCapture() {
    logging::SetSink(
        [this](const std::string& line) { lines_.push_back(line); });
  }
  ~LogCapture() {
    logging::SetSink(nullptr);
    logging::SetMinLevel(logging::Level::kWarn);
    logging::SetFormat(logging::Format::kKeyValue);
  }
  const std::vector<std::string>& lines() const { return lines_; }

 private:
  std::vector<std::string> lines_;
};

TEST_F(FlightRecorderTest, RecordAndSnapshotRoundTrip) {
  fr::Record(fr::EventType::kTxnBegin, 42);
  fr::Record(fr::EventType::kTxnCommit, 42, 7, 3);
  fr::Record(fr::EventType::kTxnConflict, 43, 7, 0, "employees/9");
  const std::vector<fr::Event> events = fr::Snapshot();
  ASSERT_EQ(events.size(), 3u);
  // Snapshot is timestamp-sorted; one thread's events keep their order.
  EXPECT_EQ(events[0].type, fr::EventType::kTxnBegin);
  EXPECT_EQ(events[0].a, 42u);
  EXPECT_EQ(events[1].type, fr::EventType::kTxnCommit);
  EXPECT_EQ(events[1].b, 7u);
  EXPECT_EQ(events[1].flags, 3u);
  EXPECT_EQ(events[2].type, fr::EventType::kTxnConflict);
  EXPECT_STREQ(events[2].detail, "employees/9");
}

TEST_F(FlightRecorderTest, DetailTruncatesToSixteenBytes) {
  fr::Record(fr::EventType::kSegmentFreeze, 1, 2, 0,
             "a_very_long_store_name_indeed");
  const std::vector<fr::Event> events = fr::Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].detail), "a_very_long_stor");
}

TEST_F(FlightRecorderTest, DisabledRecorderDropsEvents) {
  fr::SetEnabled(false);
  fr::Record(fr::EventType::kTxnBegin, 1);
  EXPECT_TRUE(fr::Snapshot().empty());
  fr::SetEnabled(true);
  fr::Record(fr::EventType::kTxnBegin, 2);
  EXPECT_EQ(fr::Snapshot().size(), 1u);
}

TEST_F(FlightRecorderTest, EventTypeNamesAreSnakeCase) {
  for (uint16_t t = 1; t <= static_cast<uint16_t>(fr::EventType::kCrash);
       ++t) {
    const std::string name =
        fr::EventTypeName(static_cast<fr::EventType>(t));
    ASSERT_FALSE(name.empty());
    EXPECT_GE(name[0], 'a');
    EXPECT_LE(name[0], 'z');
    for (char c : name) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                  c == '_')
          << name;
    }
  }
  EXPECT_STREQ(fr::EventTypeName(static_cast<fr::EventType>(9999)),
               "unknown");
}

// Each writer thread overfills its own ring several times; the drain
// must survive the wrap and return only fully-published events. Run
// under TSan this is the seqlock's data-race test.
TEST_F(FlightRecorderTest, ConcurrentWritersWithWrapAround) {
  constexpr int kThreads = 8;
  constexpr int kEventsPerThread = 10000;  // ring default is 2048: ~5 wraps
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      for (int i = 0; i < kEventsPerThread; ++i) {
        fr::Record(fr::EventType::kWalAppend,
                   static_cast<uint64_t>(t) * kEventsPerThread + i, i);
      }
    });
  }
  for (auto& w : writers) w.join();
  const std::vector<fr::Event> events = fr::Snapshot();
  // Each ring keeps its most recent `capacity` events; every slot must
  // decode to the one type we wrote (no torn slots survive the drain).
  EXPECT_GT(events.size(), 0u);
  EXPECT_LE(events.size(), static_cast<size_t>(kThreads) * kEventsPerThread);
  for (const fr::Event& ev : events) {
    EXPECT_EQ(ev.type, fr::EventType::kWalAppend);
    EXPECT_EQ(ev.a % kEventsPerThread, ev.b);
  }
  // Per-thread suffix property: the surviving events of each writer are
  // its most recent ones, in order.
  std::map<uint16_t, std::vector<uint64_t>> by_tid;
  for (const fr::Event& ev : events) by_tid[ev.tid].push_back(ev.b);
  for (const auto& [tid, seq] : by_tid) {
    EXPECT_TRUE(std::is_sorted(seq.begin(), seq.end())) << "tid " << tid;
    EXPECT_EQ(seq.back(), static_cast<uint64_t>(kEventsPerThread - 1));
  }
}

// Draining while writers are live must never block them or return a
// half-written slot (the seqlock discard path).
TEST_F(FlightRecorderTest, DrainWhileWriting) {
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&stop] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        fr::Record(fr::EventType::kBlockCacheEvict, i, i * 2);
        ++i;
      }
    });
  }
  for (int drain = 0; drain < 50; ++drain) {
    const std::vector<fr::Event> events = fr::Snapshot();
    for (const fr::Event& ev : events) {
      ASSERT_EQ(ev.type, fr::EventType::kBlockCacheEvict);
      ASSERT_EQ(ev.b, ev.a * 2);  // a torn slot would break the pairing
    }
  }
  stop.store(true);
  for (auto& w : writers) w.join();
}

// Steady-clock timestamps are comparable across threads: an event
// recorded strictly after another thread's last event (enforced with a
// join) must not sort before it.
TEST_F(FlightRecorderTest, TimestampOrderAcrossThreads) {
  std::thread first(
      [] { fr::Record(fr::EventType::kCheckpointPhase, 1, 0, 0, "first"); });
  first.join();
  std::thread second(
      [] { fr::Record(fr::EventType::kCheckpointPhase, 2, 0, 0, "second"); });
  second.join();
  const std::vector<fr::Event> events = fr::Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_TRUE(std::is_sorted(
      events.begin(), events.end(),
      [](const fr::Event& x, const fr::Event& y) {
        return x.ts_ns < y.ts_ns;
      }));
  EXPECT_EQ(events[0].a, 1u);
  EXPECT_EQ(events[1].a, 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST_F(FlightRecorderTest, ChromeTraceJsonParsesAndIsWellFormed) {
  fr::Record(fr::EventType::kTxnBegin, 1);
  fr::Record(fr::EventType::kWalFsync, 4096, 1500000, 3);  // duration event
  fr::Record(fr::EventType::kQueryExecute, 10, 2000000, 1);
  fr::Record(fr::EventType::kCheckpointPhase, 5, 0, 0, "install");
  const std::string jsonText = ArchIS::DumpTrace();
  auto parsed = json::Parse(jsonText);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Value* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->items().size(), 4u);
  for (const Value& ev : events->items()) {
    ASSERT_TRUE(ev.is_object());
    const Value* name = ev.Find("name");
    ASSERT_NE(name, nullptr);
    const Value* ph = ev.Find("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(ev.Find("ts"), nullptr);
    if (ph->AsString() == "X") {
      // wal_fsync / query_execute render as complete events with dur.
      ASSERT_NE(ev.Find("dur"), nullptr);
    }
  }
  // The duration events must be the "X" ones.
  EXPECT_EQ(events->items()[1].Find("ph")->AsString(), "X");
  EXPECT_EQ(events->items()[2].Find("ph")->AsString(), "X");
  EXPECT_EQ(events->items()[3].Find("args")->Find("detail")->AsString(),
            "install");
}

TEST_F(FlightRecorderTest, CrashDumpIsParseableJsonEndingInCrashEvent) {
  const auto dir = std::filesystem::temp_directory_path() / "archis_fr_test";
  std::filesystem::create_directories(dir);
  ::setenv("ARCHIS_CRASHDUMP_DIR", dir.string().c_str(), /*overwrite=*/1);
  fr::Record(fr::EventType::kTxnBegin, 77);
  fr::Record(fr::EventType::kTxnCommit, 77, 9, 1);
  const std::string path = fr::WriteCrashDump("unit_test_reason");
  ::unsetenv("ARCHIS_CRASHDUMP_DIR");
  ASSERT_FALSE(path.empty());
  ASSERT_NE(path.find(".crashdump"), std::string::npos);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = json::Parse(buf.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("reason")->AsString(), "unit_test_reason");
  ASSERT_NE(parsed->Find("unix_ms"), nullptr);
  ASSERT_NE(parsed->Find("pid"), nullptr);
  ASSERT_NE(parsed->Find("metrics"), nullptr);
  const Value* events = parsed->Find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_GE(events->items().size(), 3u);
  // The dump stamps the crash itself as the final event.
  EXPECT_EQ(events->items().back().Find("name")->AsString(), "crash");
  EXPECT_EQ(events->items().back().Find("args")->Find("detail")->AsString(),
            "unit_test_reason");
  std::remove(path.c_str());
}

TEST_F(FlightRecorderTest, CrashDumpCarriesActiveTransactionTable) {
  const auto dir = std::filesystem::temp_directory_path() / "archis_fr_test";
  std::filesystem::create_directories(dir);
  ::setenv("ARCHIS_CRASHDUMP_DIR", dir.string().c_str(), /*overwrite=*/1);
  ArchIS db(ArchISOptions{}, Date::FromYmd(2000, 1, 1));
  RelationSpec spec;
  spec.name = "t";
  spec.schema = minirel::Schema({{"id", minirel::DataType::kInt64},
                                 {"v", minirel::DataType::kInt64}});
  spec.key_columns = {"id"};
  spec.doc_name = "t.xml";
  ASSERT_TRUE(db.CreateRelation(spec).ok());
  auto txn = db.Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(
      txn->Insert("t", {minirel::Value(int64_t{1}), minirel::Value(int64_t{2})})
          .ok());
  // Dump while the transaction is open: its id must appear in the
  // facade's registered crash-info source.
  const std::string path = fr::WriteCrashDump("open_txn_dump");
  ::unsetenv("ARCHIS_CRASHDUMP_DIR");
  ASSERT_FALSE(path.empty());
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = json::Parse(buf.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Value* sources = parsed->Find("sources");
  ASSERT_NE(sources, nullptr);
  ASSERT_TRUE(sources->is_array());
  ASSERT_FALSE(sources->items().empty());
  const Value* txns = sources->items()[0].Find("active_txns");
  ASSERT_NE(txns, nullptr);
  ASSERT_TRUE(txns->is_array());
  ASSERT_EQ(txns->items().size(), 1u);
  ASSERT_TRUE(txn->Commit().ok());
  std::remove(path.c_str());
}

TEST_F(FlightRecorderTest, SlowQueryLogFiresOnThreshold) {
  ArchIS db(ArchISOptions{}, Date::FromYmd(2000, 1, 1));
  RelationSpec spec;
  spec.name = "t";
  spec.schema = minirel::Schema({{"id", minirel::DataType::kInt64},
                                 {"v", minirel::DataType::kInt64}});
  spec.key_columns = {"id"};
  spec.doc_name = "t.xml";
  ASSERT_TRUE(db.CreateRelation(spec).ok());
  ASSERT_TRUE(
      db.Insert("t", {minirel::Value(int64_t{1}), minirel::Value(int64_t{5})})
          .ok());
  const std::string q =
      "for $v in doc(\"t.xml\")/ts/t/v return $v";
  {
    // Threshold far below any real latency: must log, with the profile.
    LogCapture cap;
    QueryOptions opts;
    opts.slow_query_ms = 1e-6;
    ASSERT_TRUE(db.Query(q, opts).ok());
    bool logged = false;
    for (const std::string& line : cap.lines()) {
      if (line.find("event=query.slow") != std::string::npos) {
        logged = true;
        EXPECT_NE(line.find("threshold_ms"), std::string::npos);
        EXPECT_NE(line.find("profile"), std::string::npos);
      }
    }
    EXPECT_TRUE(logged);
  }
  {
    // 0 disables the slow log outright (and wins over the environment).
    LogCapture cap;
    QueryOptions opts;
    opts.slow_query_ms = 0;
    ASSERT_TRUE(db.Query(q, opts).ok());
    for (const std::string& line : cap.lines()) {
      EXPECT_EQ(line.find("event=query.slow"), std::string::npos) << line;
    }
  }
  {
    // A generous threshold must not fire for a trivial query.
    LogCapture cap;
    QueryOptions opts;
    opts.slow_query_ms = 60000;
    ASSERT_TRUE(db.Query(q, opts).ok());
    for (const std::string& line : cap.lines()) {
      EXPECT_EQ(line.find("event=query.slow"), std::string::npos) << line;
    }
  }
  // The slow run left slow_query + query_execute events in the stream.
  bool saw_slow = false;
  for (const fr::Event& ev : fr::Snapshot()) {
    if (ev.type == fr::EventType::kSlowQuery) saw_slow = true;
  }
  EXPECT_TRUE(saw_slow);
}

TEST_F(FlightRecorderTest, TransactionLifecycleEventsFlow) {
  ArchIS db(ArchISOptions{}, Date::FromYmd(2000, 1, 1));
  RelationSpec spec;
  spec.name = "t";
  spec.schema = minirel::Schema({{"id", minirel::DataType::kInt64},
                                 {"v", minirel::DataType::kInt64}});
  spec.key_columns = {"id"};
  spec.doc_name = "t.xml";
  ASSERT_TRUE(db.CreateRelation(spec).ok());
  fr::ResetForTest();  // drop the CreateRelation-era events
  auto txn = db.Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(
      txn->Insert("t", {minirel::Value(int64_t{1}), minirel::Value(int64_t{2})})
          .ok());
  ASSERT_TRUE(txn->Commit().ok());
  auto aborted = db.Begin();
  ASSERT_TRUE(aborted.ok());
  ASSERT_TRUE(aborted
                  ->Insert("t", {minirel::Value(int64_t{2}),
                                 minirel::Value(int64_t{3})})
                  .ok());
  ASSERT_TRUE(aborted->Abort().ok());
  bool begin = false, commit = false, abort_seen = false;
  for (const fr::Event& ev : fr::Snapshot()) {
    switch (ev.type) {
      case fr::EventType::kTxnBegin:
        begin = true;
        break;
      case fr::EventType::kTxnCommit:
        commit = true;
        EXPECT_GT(ev.b, 0u);      // commit_seq
        EXPECT_EQ(ev.flags, 1u);  // one change captured
        break;
      case fr::EventType::kTxnAbort:
        abort_seen = true;
        EXPECT_EQ(ev.flags,
                  static_cast<uint32_t>(fr::AbortReason::kExplicit));
        break;
      default:
        break;
    }
  }
  EXPECT_TRUE(begin);
  EXPECT_TRUE(commit);
  EXPECT_TRUE(abort_seen);
}

}  // namespace
}  // namespace archis
