// Workload-generator tests plus whole-system invariants on generated data:
// determinism, snapshot-vs-current-table consistency, and agreement between
// ArchIS configurations and the native XML database on the bench queries.
#include <gtest/gtest.h>

#include "workload/employee_workload.h"
#include "xmldb/xml_database.h"

namespace archis::workload {
namespace {

using core::ArchIS;
using core::ArchISOptions;
using minirel::Tuple;
using minirel::Value;

WorkloadConfig SmallConfig() {
  WorkloadConfig cfg;
  cfg.initial_employees = 40;
  cfg.years = 6;
  return cfg;
}

TEST(WorkloadTest, GenerationIsDeterministicPerSeed) {
  ArchISOptions opts;
  ArchIS db1(opts, Date::FromYmd(1985, 1, 1));
  ArchIS db2(opts, Date::FromYmd(1985, 1, 1));
  EmployeeWorkload w1(SmallConfig()), w2(SmallConfig());
  auto s1 = w1.Generate(&db1);
  auto s2 = w2.Generate(&db2);
  ASSERT_TRUE(s1.ok()) << s1.status().ToString();
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s1->inserts, s2->inserts);
  EXPECT_EQ(s1->updates, s2->updates);
  EXPECT_EQ(s1->deletes, s2->deletes);
  EXPECT_EQ(db1.HistoryStorageBytes(), db2.HistoryStorageBytes());

  WorkloadConfig other = SmallConfig();
  other.seed = 999;
  ArchIS db3(opts, Date::FromYmd(1985, 1, 1));
  EmployeeWorkload w3(other);
  auto s3 = w3.Generate(&db3);
  ASSERT_TRUE(s3.ok());
  EXPECT_NE(s1->updates, s3->updates);
}

TEST(WorkloadTest, ProducesSubstantialHistory) {
  ArchISOptions opts;
  ArchIS db(opts, Date::FromYmd(1985, 1, 1));
  EmployeeWorkload w(SmallConfig());
  auto stats = w.Generate(&db);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->inserts, 40u);   // initial + hires
  EXPECT_GT(stats->updates, 200u);  // raises/titles/depts over 6 years
  EXPECT_GT(stats->deletes, 0u);
  EXPECT_GT(stats->final_employee_count, 10);
  // The probe employee survives the whole history.
  auto snap = db.Snapshot("employees", db.Now());
  ASSERT_TRUE(snap.ok());
  bool probe_alive = false;
  for (const Tuple& row : *snap) {
    if (row.at(0).AsInt() == w.probe_id()) probe_alive = true;
  }
  EXPECT_TRUE(probe_alive);
}

// The fundamental transaction-time invariant: the snapshot of the H-tables
// at the current time equals the current database contents.
TEST(WorkloadTest, FinalSnapshotMatchesCurrentTable) {
  ArchISOptions opts;
  opts.segment.umin = 0.4;
  ArchIS db(opts, Date::FromYmd(1985, 1, 1));
  EmployeeWorkload w(SmallConfig());
  ASSERT_TRUE(w.Generate(&db).ok());

  auto snap = db.Snapshot("employees", db.Now());
  ASSERT_TRUE(snap.ok());
  auto table = db.current_db().catalog().GetTable("employees");
  ASSERT_TRUE(table.ok());
  std::map<int64_t, Tuple> current, snapshot;
  ASSERT_TRUE((*table)->Scan([&](const storage::RecordId&, const Tuple& t) {
    current[t.at(0).AsInt()] = t;
    return true;
  }).ok());
  for (const Tuple& t : *snap) snapshot[t.at(0).AsInt()] = t;
  ASSERT_EQ(current.size(), snapshot.size());
  for (const auto& [id, row] : current) {
    ASSERT_TRUE(snapshot.count(id)) << "missing id " << id;
    EXPECT_EQ(row, snapshot[id]) << "id " << id;
  }
}

// Historical snapshots must agree across layouts AND with the native XML
// database over the published H-document (the paper's three systems).
TEST(WorkloadTest, SnapshotsAgreeAcrossAllThreeSystems) {
  auto make = [](bool seg, bool zip) {
    ArchISOptions opts;
    opts.segment.enabled = seg;
    opts.segment.compress = zip;
    opts.segment.umin = 0.4;
    return std::make_unique<ArchIS>(opts, Date::FromYmd(1985, 1, 1));
  };
  auto plain = make(false, false);
  auto seg = make(true, false);
  auto zip = make(true, true);
  WorkloadConfig cfg = SmallConfig();
  cfg.initial_employees = 25;
  cfg.years = 4;
  for (auto* db : {plain.get(), seg.get(), zip.get()}) {
    EmployeeWorkload w(cfg);  // same seed -> identical streams
    ASSERT_TRUE(w.Generate(db).ok());
  }

  // TaminoLite gets the published H-document from the segmented instance.
  xmldb::XmlDatabase tamino(xmldb::StorageMode::kCompressed, seg->Now());
  auto doc = seg->PublishHistory("employees");
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(tamino.PutDocument("employees.xml", *doc).ok());

  for (int year = 1985; year <= 1988; ++year) {
    Date t = Date::FromYmd(year, 7, 1);
    auto s1 = plain->Snapshot("employees", t);
    auto s2 = seg->Snapshot("employees", t);
    auto s3 = zip->Snapshot("employees", t);
    ASSERT_TRUE(s1.ok() && s2.ok() && s3.ok());
    auto ids = [](const std::vector<Tuple>& rows) {
      std::set<int64_t> out;
      for (const Tuple& r : rows) out.insert(r.at(0).AsInt());
      return out;
    };
    EXPECT_EQ(ids(*s1), ids(*s2)) << t.ToString();
    EXPECT_EQ(ids(*s1), ids(*s3)) << t.ToString();

    // Native XML DB snapshot via XQuery.
    char q[256];
    std::snprintf(q, sizeof(q),
                  "for $e in doc(\"employees.xml\")/employees/employee/id"
                  "[tstart(.) <= xs:date(\"%s\") and "
                  "tend(.) >= xs:date(\"%s\")] return $e",
                  t.ToString().c_str(), t.ToString().c_str());
    auto native = tamino.Query(q);
    ASSERT_TRUE(native.ok()) << native.status().ToString();
    std::set<int64_t> native_ids;
    for (const auto& item : *native) {
      native_ids.insert(std::stoll(item.node()->StringValue()));
    }
    EXPECT_EQ(native_ids, ids(*s1)) << t.ToString();
  }
}

TEST(WorkloadTest, DailyUpdateAdvancesClockAndArchives) {
  ArchISOptions opts;
  ArchIS db(opts, Date::FromYmd(1985, 1, 1));
  WorkloadConfig cfg = SmallConfig();
  cfg.years = 2;
  EmployeeWorkload w(cfg);
  ASSERT_TRUE(w.Generate(&db).ok());
  Date before = db.Now();
  uint64_t bytes_before = db.HistoryStorageBytes();
  uint64_t total_updates = 0;
  for (int d = 0; d < 60; ++d) {
    auto stats = w.SimulateDay(&db);
    ASSERT_TRUE(stats.ok());
    total_updates += stats->updates;
  }
  EXPECT_EQ(db.Now(), before.AddDays(60));
  EXPECT_GT(total_updates, 0u);
  EXPECT_GE(db.HistoryStorageBytes(), bytes_before);
}

TEST(WorkloadTest, UpdateLogModeDefersArchival) {
  ArchISOptions opts;
  opts.capture_mode = core::CaptureMode::kUpdateLog;
  ArchIS db(opts, Date::FromYmd(1985, 1, 1));
  WorkloadConfig cfg = SmallConfig();
  cfg.initial_employees = 10;
  cfg.years = 1;
  EmployeeWorkload w(cfg);
  // Generate flushes at the end, so history must still be complete.
  ASSERT_TRUE(w.Generate(&db).ok());
  auto snap = db.Snapshot("employees", db.Now());
  ASSERT_TRUE(snap.ok());
  EXPECT_FALSE(snap->empty());
}

}  // namespace
}  // namespace archis::workload
