// Unit tests for minirel/: value codec, schemas, tables with indexes, and
// the executor operators.
#include <gtest/gtest.h>

#include "minirel/database.h"
#include "minirel/executor.h"

namespace archis::minirel {
namespace {

TEST(ValueTest, TypedAccessors) {
  EXPECT_EQ(Value(int64_t{42}).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value(3.5).AsDouble(), 3.5);
  EXPECT_EQ(Value("abc").AsString(), "abc");
  EXPECT_EQ(Value(Date::FromYmd(1995, 1, 1)).AsDate().year(), 1995);
}

TEST(ValueTest, NumericCoercion) {
  EXPECT_DOUBLE_EQ(*Value(int64_t{7}).AsNumeric(), 7.0);
  EXPECT_DOUBLE_EQ(*Value(2.5).AsNumeric(), 2.5);
  EXPECT_EQ(Value("x").AsNumeric().status().code(), StatusCode::kTypeError);
}

TEST(ValueTest, OrderingWithinAndAcrossTypes) {
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_LT(Value(Date::FromYmd(1995, 1, 1)), Value(Date::Forever()));
  // Cross-type ordering is by type tag — total but arbitrary.
  EXPECT_TRUE(Value(int64_t{5}) < Value("a") ||
              Value("a") < Value(int64_t{5}));
}

class ValueCodec : public ::testing::TestWithParam<int> {};

TEST_P(ValueCodec, EncodeDecodeRoundTrip) {
  std::vector<std::pair<DataType, Value>> cases = {
      {DataType::kInt64, Value(int64_t{GetParam()} * 1000003)},
      {DataType::kDouble, Value(GetParam() * 0.125)},
      {DataType::kString, Value(std::string(
          static_cast<size_t>(GetParam()), 'q'))},
      {DataType::kDate,
       Value(Date::FromYmd(1985, 1, 1).AddDays(GetParam() * 31))},
  };
  for (auto& [type, v] : cases) {
    std::string buf;
    v.EncodeTo(&buf);
    size_t pos = 0;
    auto back = Value::DecodeFrom(type, buf, &pos);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
    EXPECT_EQ(pos, buf.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ValueCodec, ::testing::Range(0, 16));

TEST(TupleTest, EncodeRejectsSchemaMismatch) {
  Schema schema({{"id", DataType::kInt64}, {"name", DataType::kString}});
  Tuple wrong_arity{Value(int64_t{1})};
  EXPECT_EQ(wrong_arity.Encode(schema).status().code(),
            StatusCode::kInvalidArgument);
  Tuple wrong_type{Value("oops"), Value("x")};
  EXPECT_EQ(wrong_type.Encode(schema).status().code(),
            StatusCode::kTypeError);
}

TEST(TupleTest, DecodeRejectsTrailingBytes) {
  Schema schema({{"id", DataType::kInt64}});
  Tuple t{Value(int64_t{5})};
  auto bytes = t.Encode(schema);
  ASSERT_TRUE(bytes.ok());
  *bytes += "junk";
  EXPECT_EQ(Tuple::Decode(schema, *bytes).status().code(),
            StatusCode::kCorruption);
}

TEST(SchemaTest, LookupAndConcat) {
  Schema a({{"id", DataType::kInt64}, {"x", DataType::kString}});
  Schema b({{"id", DataType::kInt64}, {"y", DataType::kDouble}});
  EXPECT_EQ(*a.ColumnIndex("x"), 1u);
  EXPECT_FALSE(a.ColumnIndex("z").ok());
  Schema joined = a.Concat(b, "b");
  EXPECT_EQ(joined.num_columns(), 4u);
  EXPECT_TRUE(joined.HasColumn("b.id"));  // collision prefixed
  EXPECT_TRUE(joined.HasColumn("y"));
}

class TableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto t = db_.catalog().CreateTable(
        "emp", Schema({{"id", DataType::kInt64},
                       {"name", DataType::kString},
                       {"salary", DataType::kInt64}}));
    ASSERT_TRUE(t.ok());
    table_ = *t;
    ASSERT_TRUE(table_->CreateIndex("id", {"id"}).ok());
    for (int64_t i = 0; i < 100; ++i) {
      ASSERT_TRUE(table_
                      ->Insert(Tuple{Value(i), Value("emp" + std::to_string(i)),
                                     Value(30000 + i * 100)})
                      .ok());
    }
  }

  Database db_;
  Table* table_ = nullptr;
};

TEST_F(TableTest, IndexScanFindsSingleRow) {
  const TableIndex* idx = table_->GetIndex("id");
  ASSERT_NE(idx, nullptr);
  int hits = 0;
  ASSERT_TRUE(table_->IndexScan(*idx, {Value(int64_t{42})},
                                {Value(int64_t{42})},
                                [&](const storage::RecordId&, const Tuple& t) {
    EXPECT_EQ(t.at(1).AsString(), "emp42");
    ++hits;
    return true;
  }).ok());
  EXPECT_EQ(hits, 1);
}

TEST_F(TableTest, DeleteMaintainsIndex) {
  const TableIndex* idx = table_->GetIndex("id");
  storage::RecordId victim;
  ASSERT_TRUE(table_->IndexScan(*idx, {Value(int64_t{7})}, {Value(int64_t{7})},
                                [&](const storage::RecordId& rid,
                                    const Tuple&) {
    victim = rid;
    return false;
  }).ok());
  ASSERT_TRUE(table_->Delete(victim).ok());
  int hits = 0;
  ASSERT_TRUE(table_->IndexScan(*idx, {Value(int64_t{7})}, {Value(int64_t{7})},
                                [&](const storage::RecordId&, const Tuple&) {
    ++hits;
    return true;
  }).ok());
  EXPECT_EQ(hits, 0);
  EXPECT_EQ(table_->RowCount(), 99u);
}

TEST_F(TableTest, UpdateReindexesChangedKeys) {
  const TableIndex* idx = table_->GetIndex("id");
  storage::RecordId rid;
  Tuple row;
  ASSERT_TRUE(table_->IndexScan(*idx, {Value(int64_t{3})}, {Value(int64_t{3})},
                                [&](const storage::RecordId& r,
                                    const Tuple& t) {
    rid = r;
    row = t;
    return false;
  }).ok());
  row.at(0) = Value(int64_t{1003});
  ASSERT_TRUE(table_->Update(&rid, row).ok());
  int old_hits = 0, new_hits = 0;
  ASSERT_TRUE(table_->IndexScan(*idx, {Value(int64_t{3})}, {Value(int64_t{3})},
                                [&](const storage::RecordId&, const Tuple&) {
    ++old_hits;
    return true;
  }).ok());
  ASSERT_TRUE(table_->IndexScan(*idx, {Value(int64_t{1003})},
                                {Value(int64_t{1003})},
                                [&](const storage::RecordId&, const Tuple&) {
    ++new_hits;
    return true;
  }).ok());
  EXPECT_EQ(old_hits, 0);
  EXPECT_EQ(new_hits, 1);
}

TEST_F(TableTest, SelectWithPredicate) {
  Predicate pred;
  ASSERT_TRUE(db_.catalog().HasTable("emp"));
  pred.WhereConst(2, CompareOp::kGe, Value(int64_t{39000}));
  auto rows = table_->Select(pred);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 10u);  // salaries 39000..39900
}

TEST_F(TableTest, ExecutorFilterProjectSort) {
  auto scan = MakeSeqScan(table_);
  ASSERT_TRUE(scan.ok());
  Predicate pred;
  pred.WhereConst(0, CompareOp::kLt, Value(int64_t{10}));
  auto filtered = MakeFilter(std::move(*scan), std::move(pred));
  auto projected = MakeProject(std::move(filtered), {1, 2});
  EXPECT_EQ(projected->schema().num_columns(), 2u);
  auto sorted = MakeSort(std::move(projected), {1});
  auto rows = Collect(sorted.get());
  ASSERT_EQ(rows.size(), 10u);
  EXPECT_EQ(rows.front().at(1).AsInt(), 30000);
  EXPECT_EQ(rows.back().at(1).AsInt(), 30900);
}

TEST_F(TableTest, SortMergeJoinMatchesHashJoin) {
  auto dept = db_.catalog().CreateTable(
      "dept", Schema({{"id", DataType::kInt64}, {"d", DataType::kString}}));
  ASSERT_TRUE(dept.ok());
  for (int64_t i = 0; i < 100; i += 2) {  // only even ids have a dept
    ASSERT_TRUE(
        (*dept)->Insert(Tuple{Value(i), Value("d" + std::to_string(i))}).ok());
  }
  auto emp_scan1 = MakeSeqScan(table_);
  auto dept_scan1 = MakeSeqScan(*dept);
  auto emp_scan2 = MakeSeqScan(table_);
  auto dept_scan2 = MakeSeqScan(*dept);
  ASSERT_TRUE(emp_scan1.ok() && dept_scan1.ok() && emp_scan2.ok() &&
              dept_scan2.ok());
  auto merge = MakeSortMergeJoin(std::move(*emp_scan1), 0,
                                 std::move(*dept_scan1), 0, "r");
  auto hash = MakeHashJoin(std::move(*emp_scan2), 0, std::move(*dept_scan2),
                           0, "r");
  auto merge_rows = Collect(merge.get());
  auto hash_rows = Collect(hash.get());
  EXPECT_EQ(merge_rows.size(), 50u);
  EXPECT_EQ(merge_rows.size(), hash_rows.size());
}

TEST_F(TableTest, GroupedAggregation) {
  // Group salaries into two buckets by id parity via a computed column is
  // out of scope; group by a constant-range column instead: id % nothing.
  auto scan = MakeSeqScan(table_);
  ASSERT_TRUE(scan.ok());
  auto agg = MakeAggregate(std::move(*scan), {},
                           {{AggFn::kCount, 0, "n"},
                            {AggFn::kAvg, 2, "avg_salary"},
                            {AggFn::kMin, 2, "min_salary"},
                            {AggFn::kMax, 2, "max_salary"}});
  auto rows = Collect(agg.get());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at(0).AsInt(), 100);
  EXPECT_DOUBLE_EQ(rows[0].at(1).AsDouble(), 30000 + 99 * 100 / 2.0);
  EXPECT_EQ(rows[0].at(2).AsInt(), 30000);
  EXPECT_EQ(rows[0].at(3).AsInt(), 39900);
}

TEST_F(TableTest, DatabaseStatsSumTables) {
  auto stats = db_.Stats();
  EXPECT_GT(stats.data_bytes, 0u);
  EXPECT_GT(stats.page_count, 0u);
}

TEST(CatalogTest, CreateDropSemantics) {
  Database db;
  ASSERT_TRUE(db.catalog().CreateTable("t", Schema({{"x",
      DataType::kInt64}})).ok());
  EXPECT_EQ(db.catalog()
                .CreateTable("t", Schema({{"x", DataType::kInt64}}))
                .status()
                .code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(db.catalog().DropTable("t").ok());
  EXPECT_EQ(db.catalog().DropTable("t").code(), StatusCode::kNotFound);
  EXPECT_FALSE(db.catalog().GetTable("t").ok());
}

}  // namespace
}  // namespace archis::minirel
