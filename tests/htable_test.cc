// Unit tests for H-tables (paper Section 5.1), the change-record codec
// (WAL wire format), the archiver and the H-document publisher — including
// composite keys with surrogate ids.
#include <gtest/gtest.h>

#include "archis/archiver.h"
#include "archis/publisher.h"
#include "xml/serializer.h"

namespace archis::core {
namespace {

using minirel::DataType;
using minirel::Schema;
using minirel::Tuple;
using minirel::Value;

Date D(int y, int m, int d) { return Date::FromYmd(y, m, d); }

Schema LineItemSchema() {
  // The paper's composite-key example: (supplierno, itemno) -> surrogate.
  return Schema({{"supplierno", DataType::kInt64},
                 {"itemno", DataType::kInt64},
                 {"qty", DataType::kInt64}});
}

TEST(HTableSetTest, CreatesKeyAndAttributeStores) {
  minirel::Database hdb;
  auto set = HTableSet::Create(
      &hdb, "employee",
      Schema({{"id", DataType::kInt64},
              {"name", DataType::kString},
              {"salary", DataType::kInt64}}),
      {"id"}, SegmentOptions{}, D(1995, 1, 1));
  ASSERT_TRUE(set.ok());
  EXPECT_NE((*set)->key_store(), nullptr);
  ASSERT_EQ((*set)->attribute_names().size(), 2u);
  EXPECT_TRUE((*set)->attribute_store("name").ok());
  EXPECT_TRUE((*set)->attribute_store("salary").ok());
  EXPECT_EQ((*set)->attribute_store("id").status().code(),
            StatusCode::kNotFound);
  // Backing tables exist in the H-database with the paper's naming.
  EXPECT_TRUE(hdb.catalog().HasTable("employee_key__live"));
  EXPECT_TRUE(hdb.catalog().HasTable("employee_salary__live"));
  EXPECT_TRUE(hdb.catalog().HasTable("employee_salary__arch"));
}

TEST(HTableSetTest, CompositeKeysGetStableSurrogates) {
  minirel::Database hdb;
  auto set = HTableSet::Create(&hdb, "lineitem", LineItemSchema(),
                               {"supplierno", "itemno"}, SegmentOptions{},
                               D(1995, 1, 1));
  ASSERT_TRUE(set.ok());
  Tuple a{Value(int64_t{10}), Value(int64_t{20}), Value(int64_t{1})};
  Tuple b{Value(int64_t{10}), Value(int64_t{21}), Value(int64_t{2})};
  auto id_a1 = (*set)->IdFor(a);
  auto id_b = (*set)->IdFor(b);
  auto id_a2 = (*set)->IdFor(a);
  ASSERT_TRUE(id_a1.ok() && id_b.ok() && id_a2.ok());
  EXPECT_EQ(*id_a1, *id_a2);  // stable per key
  EXPECT_NE(*id_a1, *id_b);   // distinct keys, distinct surrogates
}

TEST(HTableSetTest, UpdateOnlyTouchesChangedAttributes) {
  minirel::Database hdb;
  Schema schema({{"id", DataType::kInt64},
                 {"name", DataType::kString},
                 {"salary", DataType::kInt64}});
  auto set = HTableSet::Create(&hdb, "emp", schema, {"id"}, SegmentOptions{},
                               D(1995, 1, 1));
  ASSERT_TRUE(set.ok());
  Tuple v1{Value(int64_t{1}), Value("Ann"), Value(int64_t{100})};
  Tuple v2{Value(int64_t{1}), Value("Ann"), Value(int64_t{200})};
  ASSERT_TRUE((*set)->ArchiveInsert(v1, D(1995, 1, 1)).ok());
  ASSERT_TRUE((*set)->ArchiveUpdate(v1, v2, D(1996, 1, 1)).ok());
  EXPECT_EQ((*(*set)->attribute_store("salary"))->LogicalTuples(), 2u);
  EXPECT_EQ((*(*set)->attribute_store("name"))->LogicalTuples(), 1u);
  EXPECT_EQ((*set)->key_store()->LogicalTuples(), 1u);
}

TEST(HTableSetTest, SnapshotJoinsAllStores) {
  minirel::Database hdb;
  Schema schema({{"id", DataType::kInt64},
                 {"name", DataType::kString},
                 {"salary", DataType::kInt64}});
  auto set = HTableSet::Create(&hdb, "emp", schema, {"id"}, SegmentOptions{},
                               D(1995, 1, 1));
  ASSERT_TRUE(set.ok());
  Tuple v1{Value(int64_t{1}), Value("Ann"), Value(int64_t{100})};
  Tuple v2{Value(int64_t{1}), Value("Ann"), Value(int64_t{200})};
  ASSERT_TRUE((*set)->ArchiveInsert(v1, D(1995, 1, 1)).ok());
  ASSERT_TRUE((*set)->ArchiveUpdate(v1, v2, D(1996, 1, 1)).ok());
  ASSERT_TRUE((*set)->ArchiveDelete(v2, D(1997, 1, 1)).ok());

  auto mid = (*set)->Snapshot(D(1995, 6, 1));
  ASSERT_TRUE(mid.ok());
  ASSERT_EQ(mid->size(), 1u);
  EXPECT_EQ((*mid)[0], v1);
  auto late = (*set)->Snapshot(D(1996, 6, 1));
  ASSERT_TRUE(late.ok());
  EXPECT_EQ((*late)[0], v2);
  auto gone = (*set)->Snapshot(D(1998, 1, 1));
  ASSERT_TRUE(gone.ok());
  EXPECT_TRUE(gone->empty());
}

TEST(ChangeRecordCodecTest, RoundTripsEveryKind) {
  ChangeRecord update;
  update.kind = ChangeKind::kUpdate;
  update.relation = "employees";
  update.old_row = Tuple{Value(int64_t{1}), Value("Ann"), Value(1.5),
                         Value(D(1995, 1, 1))};
  update.new_row = Tuple{Value(int64_t{1}), Value("Ann"), Value(2.5),
                         Value(D(1996, 1, 1))};
  update.when = D(1996, 2, 3);
  ChangeRecord insert;
  insert.kind = ChangeKind::kInsert;
  insert.relation = "depts";
  insert.new_row = Tuple{Value(int64_t{7})};
  insert.when = D(2000, 12, 31);
  ChangeRecord del;
  del.kind = ChangeKind::kDelete;
  del.relation = "depts";
  del.old_row = Tuple{Value(int64_t{7})};
  del.when = D(2001, 1, 1);

  std::string buf;
  EncodeChangeRecord(update, &buf);
  EncodeChangeRecord(insert, &buf);
  EncodeChangeRecord(del, &buf);

  size_t pos = 0;
  for (const ChangeRecord* want : {&update, &insert, &del}) {
    auto got = DecodeChangeRecord(buf, &pos);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->kind, want->kind);
    EXPECT_EQ(got->relation, want->relation);
    EXPECT_EQ(got->old_row, want->old_row);
    EXPECT_EQ(got->new_row, want->new_row);
    EXPECT_EQ(got->when, want->when);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(ChangeRecordCodecTest, TruncationIsCorruptionNotCrash) {
  ChangeRecord c;
  c.kind = ChangeKind::kInsert;
  c.relation = "employees";
  c.new_row = Tuple{Value(int64_t{42}), Value("Bob")};
  c.when = D(1995, 1, 1);
  std::string buf;
  EncodeChangeRecord(c, &buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    size_t pos = 0;
    auto got = DecodeChangeRecord(std::string_view(buf).substr(0, cut), &pos);
    EXPECT_FALSE(got.ok()) << "cut at " << cut;
  }
}

TEST(ChangeRecordCodecTest, RejectsUnknownKindAndType) {
  ChangeRecord c;
  c.kind = ChangeKind::kInsert;
  c.relation = "r";
  c.new_row = Tuple{Value(int64_t{1})};
  c.when = D(1995, 1, 1);
  std::string buf;
  EncodeChangeRecord(c, &buf);
  std::string bad_kind = buf;
  bad_kind[0] = 99;  // kind tag is the first byte
  size_t pos = 0;
  EXPECT_EQ(DecodeChangeRecord(bad_kind, &pos).status().code(),
            StatusCode::kCorruption);
}

TEST(ArchiverTest, MaintainsGlobalRelationsTable) {
  minirel::Database hdb;
  Archiver archiver(&hdb);
  Schema schema({{"id", DataType::kInt64}, {"x", DataType::kString}});
  ASSERT_TRUE(archiver.RegisterRelation("r1", schema, {"id"},
                                        SegmentOptions{}, D(1990, 1, 1))
                  .ok());
  ASSERT_TRUE(archiver.RegisterRelation("r2", schema, {"id"},
                                        SegmentOptions{}, D(1992, 1, 1))
                  .ok());
  EXPECT_EQ(archiver
                .RegisterRelation("r1", schema, {"id"}, SegmentOptions{},
                                  D(1993, 1, 1))
                .code(),
            StatusCode::kAlreadyExists);
  ASSERT_EQ(archiver.relations().size(), 2u);
  EXPECT_TRUE(archiver.relations()[0].interval.is_current());
  ASSERT_TRUE(archiver.UnregisterRelation("r1", D(1995, 1, 1)).ok());
  EXPECT_EQ(archiver.relations()[0].interval.tend, D(1995, 1, 1));
  EXPECT_EQ(archiver.UnregisterRelation("r1", D(1996, 1, 1)).code(),
            StatusCode::kNotFound);
}

TEST(PublisherTest, GroupsAttributeHistoriesUnderEntities) {
  minirel::Database hdb;
  Schema schema({{"id", DataType::kInt64},
                 {"name", DataType::kString},
                 {"salary", DataType::kInt64}});
  auto set = HTableSet::Create(&hdb, "employees", schema, {"id"},
                               SegmentOptions{}, D(1995, 1, 1));
  ASSERT_TRUE(set.ok());
  Tuple v1{Value(int64_t{7}), Value("Ed"), Value(int64_t{100})};
  Tuple v2{Value(int64_t{7}), Value("Ed"), Value(int64_t{150})};
  ASSERT_TRUE((*set)->ArchiveInsert(v1, D(1995, 1, 1)).ok());
  ASSERT_TRUE((*set)->ArchiveUpdate(v1, v2, D(1996, 1, 1)).ok());
  Tuple w{Value(int64_t{9}), Value("Flo"), Value(int64_t{300})};
  ASSERT_TRUE((*set)->ArchiveInsert(w, D(1995, 6, 1)).ok());

  auto doc = PublishHistory(
      **set, TimeInterval(D(1995, 1, 1), Date::Forever()), {});
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->name(), "employees");
  auto entities = (*doc)->ChildrenNamed("employee");
  ASSERT_EQ(entities.size(), 2u);
  // Entities ordered by id; each has an <id> child plus grouped attributes.
  EXPECT_EQ(entities[0]->FirstChildNamed("id")->StringValue(), "7");
  EXPECT_EQ(entities[0]->ChildrenNamed("salary").size(), 2u);
  EXPECT_EQ(entities[0]->ChildrenNamed("name").size(), 1u);
  EXPECT_EQ(entities[1]->FirstChildNamed("id")->StringValue(), "9");
  // Versions are in history order with adjacent intervals.
  auto salaries = entities[0]->ChildrenNamed("salary");
  EXPECT_TRUE(salaries[0]->Interval()->Meets(*salaries[1]->Interval()));
  // Root interval covers everything.
  auto root_iv = (*doc)->Interval();
  ASSERT_TRUE(root_iv.ok());
  for (const auto& e : entities) {
    EXPECT_TRUE(root_iv->Contains(*e->Interval()));
  }
}

TEST(PublisherTest, ImportHistoryRoundTrips) {
  // Publish from one H-table set, import into a fresh one, publish again:
  // the two documents must serialize identically, and snapshots agree.
  minirel::Database hdb1, hdb2;
  Schema schema({{"id", DataType::kInt64},
                 {"name", DataType::kString},
                 {"salary", DataType::kInt64}});
  auto src = HTableSet::Create(&hdb1, "employees", schema, {"id"},
                               SegmentOptions{}, D(1995, 1, 1));
  ASSERT_TRUE(src.ok());
  Tuple v1{Value(int64_t{7}), Value("Ed"), Value(int64_t{100})};
  Tuple v2{Value(int64_t{7}), Value("Ed"), Value(int64_t{150})};
  ASSERT_TRUE((*src)->ArchiveInsert(v1, D(1995, 1, 1)).ok());
  ASSERT_TRUE((*src)->ArchiveUpdate(v1, v2, D(1996, 1, 1)).ok());
  Tuple w{Value(int64_t{9}), Value("Flo"), Value(int64_t{300})};
  ASSERT_TRUE((*src)->ArchiveInsert(w, D(1995, 6, 1)).ok());
  ASSERT_TRUE((*src)->ArchiveDelete(w, D(1996, 6, 1)).ok());

  TimeInterval rel_iv(D(1995, 1, 1), Date::Forever());
  auto doc = PublishHistory(**src, rel_iv, {});
  ASSERT_TRUE(doc.ok());

  auto dst = HTableSet::Create(&hdb2, "employees", schema, {"id"},
                               SegmentOptions{}, D(1995, 1, 1));
  ASSERT_TRUE(dst.ok());
  ASSERT_TRUE(ImportHistory(dst->get(), *doc).ok());
  auto doc2 = PublishHistory(**dst, rel_iv, {});
  ASSERT_TRUE(doc2.ok());
  EXPECT_EQ(xml::Serialize(*doc), xml::Serialize(*doc2));

  for (Date t : {D(1995, 3, 1), D(1996, 3, 1), D(1997, 1, 1)}) {
    auto s1 = (*src)->Snapshot(t);
    auto s2 = (*dst)->Snapshot(t);
    ASSERT_TRUE(s1.ok() && s2.ok());
    EXPECT_EQ(*s1, *s2) << t.ToString();
  }
  // Re-import into non-empty tables is rejected.
  EXPECT_EQ(ImportHistory(dst->get(), *doc).code(),
            StatusCode::kInvalidArgument);
}

TEST(PublisherTest, ImportRejectsMalformedDocuments) {
  minirel::Database hdb;
  Schema schema({{"id", DataType::kInt64}, {"v", DataType::kInt64}});
  auto set = HTableSet::Create(&hdb, "r", schema, {"id"}, SegmentOptions{},
                               D(2000, 1, 1));
  ASSERT_TRUE(set.ok());
  // Entity without <id>.
  auto doc = xml::XmlNode::Element("r");
  auto entity = xml::XmlNode::Element("r_row");
  entity->SetInterval(TimeInterval(D(2000, 1, 1), Date::Forever()));
  doc->AppendChild(entity);
  EXPECT_EQ(ImportHistory(set->get(), doc).code(),
            StatusCode::kInvalidArgument);
  // Unknown attribute tag.
  auto id_elem = xml::XmlNode::Element("id");
  id_elem->SetInterval(TimeInterval(D(2000, 1, 1), Date::Forever()));
  id_elem->AppendText("1");
  entity->AppendChild(id_elem);
  auto bogus = xml::XmlNode::Element("no_such_attr");
  bogus->SetInterval(TimeInterval(D(2000, 1, 1), Date::Forever()));
  bogus->AppendText("3");
  entity->AppendChild(bogus);
  EXPECT_EQ(ImportHistory(set->get(), doc).code(), StatusCode::kNotFound);
  // Non-numeric value for an INT64 attribute.
  minirel::Database hdb2;
  auto set2 = HTableSet::Create(&hdb2, "r", schema, {"id"}, SegmentOptions{},
                                D(2000, 1, 1));
  ASSERT_TRUE(set2.ok());
  auto doc2 = xml::XmlNode::Element("r");
  auto e2 = xml::XmlNode::Element("r_row");
  e2->SetInterval(TimeInterval(D(2000, 1, 1), Date::Forever()));
  auto id2 = xml::XmlNode::Element("id");
  id2->SetInterval(TimeInterval(D(2000, 1, 1), Date::Forever()));
  id2->AppendText("1");
  e2->AppendChild(id2);
  auto v2 = xml::XmlNode::Element("v");
  v2->SetInterval(TimeInterval(D(2000, 1, 1), Date::Forever()));
  v2->AppendText("not a number");
  e2->AppendChild(v2);
  doc2->AppendChild(e2);
  EXPECT_EQ(ImportHistory(set2->get(), doc2).code(),
            StatusCode::kParseError);
}

TEST(PublisherTest, CustomTagNames) {
  minirel::Database hdb;
  Schema schema({{"id", DataType::kInt64}, {"v", DataType::kString}});
  auto set = HTableSet::Create(&hdb, "weird", schema, {"id"},
                               SegmentOptions{}, D(2000, 1, 1));
  ASSERT_TRUE(set.ok());
  ASSERT_TRUE((*set)
                  ->ArchiveInsert(Tuple{Value(int64_t{1}), Value("x")},
                                  D(2000, 1, 1))
                  .ok());
  PublishOptions opts;
  opts.root_name = "records";
  opts.entity_name = "record";
  auto doc = PublishHistory(**set,
                            TimeInterval(D(2000, 1, 1), Date::Forever()),
                            opts);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->name(), "records");
  EXPECT_EQ((*doc)->ChildrenNamed("record").size(), 1u);
}

}  // namespace
}  // namespace archis::core
