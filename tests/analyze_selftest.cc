// Self-test for archis-analyze: seeded deadlock / dropped-status fixtures
// prove the static checks fire (with correct witnesses), conforming
// fixtures prove the clean pass stays clean, and a death test proves the
// runtime lock-rank assertion catches the same out-of-order acquisition
// the static side predicts.
#include "analyze/analyze.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/mutex.h"

#if defined(__SANITIZE_THREAD__)
#define ARCHIS_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ARCHIS_TSAN 1
#endif
#endif

namespace archis::analyze {
namespace {

/// Runs the analyzer over in-memory sources, returning the findings.
std::vector<Finding> Analyze(
    const std::vector<std::pair<std::string, std::string>>& sources) {
  Analyzer a;
  for (const auto& [path, contents] : sources) {
    a.AddSource(path, contents);
  }
  a.Finalize();
  return a.findings();
}

bool HasRule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

// Shared fixture scaffolding: a header declaring two independently owned
// mutexes, in the archis::Mutex idiom the analyzer expects.
const char kTwoLockHeader[] =
    "class Alpha {\n"
    " public:\n"
    "  void TakeBoth();\n"
    "  Mutex mu_{LockRank::kWal};\n"
    "};\n"
    "class Beta {\n"
    " public:\n"
    "  void TakeBoth();\n"
    "  Mutex mu_{LockRank::kThreadPool};\n"
    "};\n";

// ---- lock-cycle -----------------------------------------------------------

TEST(LockCycle, TwoLockCycleFiresWithBothWitnesses) {
  // Alpha::TakeBoth: alpha.mu_ then beta.mu_; Beta::TakeBoth: the
  // reverse. Classic AB/BA deadlock.
  const std::string cc =
      "void Alpha::TakeBoth(Beta& beta) {\n"
      "  MutexLock lock(mu_);\n"
      "  MutexLock other(beta.mu_);\n"
      "}\n"
      "void Beta::TakeBoth(Alpha& alpha) {\n"
      "  MutexLock lock(mu_);\n"
      "  MutexLock other(alpha.mu_);\n"
      "}\n";
  const auto findings =
      Analyze({{"src/fix/two.h", kTwoLockHeader}, {"src/fix/two.cc", cc}});
  ASSERT_TRUE(HasRule(findings, "lock-cycle"));
  const Finding& f = findings.front();
  EXPECT_NE(f.message.find("Alpha::mu_"), std::string::npos) << f.message;
  EXPECT_NE(f.message.find("Beta::mu_"), std::string::npos) << f.message;
  // Both interleavings must be reported as witnesses.
  std::string joined;
  for (const auto& w : f.witness) joined += w + "\n";
  EXPECT_NE(joined.find("Alpha::TakeBoth"), std::string::npos) << joined;
  EXPECT_NE(joined.find("Beta::TakeBoth"), std::string::npos) << joined;
}

TEST(LockCycle, ThreeLockCycleFires) {
  const std::string h =
      "class A { public: void F(); Mutex mu_{LockRank::kWal}; };\n"
      "class B { public: void F(); Mutex mu_{LockRank::kThreadPool}; };\n"
      "class C { public: void F(); Mutex mu_{LockRank::kLogSink}; };\n";
  const std::string cc =
      "void A::F(B& b) { MutexLock l(mu_); MutexLock m(b.mu_); }\n"
      "void B::F(C& c) { MutexLock l(mu_); MutexLock m(c.mu_); }\n"
      "void C::F(A& a) { MutexLock l(mu_); MutexLock m(a.mu_); }\n";
  const auto findings =
      Analyze({{"src/fix/three.h", h}, {"src/fix/three.cc", cc}});
  ASSERT_TRUE(HasRule(findings, "lock-cycle"));
  const std::string& msg = findings.front().message;
  EXPECT_NE(msg.find("A::mu_"), std::string::npos) << msg;
  EXPECT_NE(msg.find("B::mu_"), std::string::npos) << msg;
  EXPECT_NE(msg.find("C::mu_"), std::string::npos) << msg;
}

TEST(LockCycle, CycleThroughCalleeFires) {
  // The second hop of the cycle happens inside a callee: Alpha holds its
  // lock while calling a Beta method that locks Beta, and vice versa.
  const std::string cc =
      "void Alpha::TakeBoth(Beta& beta) {\n"
      "  MutexLock lock(mu_);\n"
      "  beta.Poke();\n"
      "}\n"
      "void Beta::Poke() { MutexLock lock(mu_); }\n"
      "void Beta::TakeBoth(Alpha& alpha) {\n"
      "  MutexLock lock(mu_);\n"
      "  alpha.Poke();\n"
      "}\n"
      "void Alpha::Poke() { MutexLock lock(mu_); }\n";
  const auto findings =
      Analyze({{"src/fix/two.h", kTwoLockHeader}, {"src/fix/two.cc", cc}});
  EXPECT_TRUE(HasRule(findings, "lock-cycle"));
}

TEST(LockCycle, ConditionalScopedAcquisitionDoesNotFire) {
  // The first lock is taken in a conditional scope that CLOSES before the
  // second acquisition: no overlap, no edge, no cycle. A flow-insensitive
  // pass would report AB/BA here.
  const std::string cc =
      "void Alpha::TakeBoth(Beta& beta) {\n"
      "  if (ready) {\n"
      "    MutexLock lock(mu_);\n"
      "  }\n"
      "  MutexLock other(beta.mu_);\n"
      "}\n"
      "void Beta::TakeBoth(Alpha& alpha) {\n"
      "  if (ready) {\n"
      "    MutexLock lock(mu_);\n"
      "  }\n"
      "  MutexLock other(alpha.mu_);\n"
      "}\n";
  const auto findings =
      Analyze({{"src/fix/two.h", kTwoLockHeader}, {"src/fix/two.cc", cc}});
  EXPECT_FALSE(HasRule(findings, "lock-cycle"));
}

TEST(LockCycle, ManualUnlockEndsTheHold) {
  // The WAL leader pattern: Lock() ... Unlock() manually, then another
  // lock. After the Unlock, nothing is held — no edge.
  const std::string cc =
      "void Alpha::TakeBoth(Beta& beta) {\n"
      "  mu_.Lock();\n"
      "  mu_.Unlock();\n"
      "  MutexLock other(beta.mu_);\n"
      "}\n"
      "void Beta::TakeBoth(Alpha& alpha) {\n"
      "  mu_.Lock();\n"
      "  mu_.Unlock();\n"
      "  MutexLock other(alpha.mu_);\n"
      "}\n";
  const auto findings =
      Analyze({{"src/fix/two.h", kTwoLockHeader}, {"src/fix/two.cc", cc}});
  EXPECT_FALSE(HasRule(findings, "lock-cycle"));
}

TEST(LockCycle, SuppressionOnWitnessLineSilences) {
  const std::string cc =
      "void Alpha::TakeBoth(Beta& beta) {\n"
      "  MutexLock lock(mu_);\n"
      "  // archis-analyze: allow(lock-cycle) -- fixture: proven unreachable\n"
      "  MutexLock other(beta.mu_);\n"
      "}\n"
      "void Beta::TakeBoth(Alpha& alpha) {\n"
      "  MutexLock lock(mu_);\n"
      "  MutexLock other(alpha.mu_);\n"
      "}\n";
  const auto findings =
      Analyze({{"src/fix/two.h", kTwoLockHeader}, {"src/fix/two.cc", cc}});
  EXPECT_FALSE(HasRule(findings, "lock-cycle"));
}

// ---- dropped-error-arm ----------------------------------------------------

TEST(DroppedErrorArm, FiresWhenErrorArmFallsOffTheEnd) {
  const std::string cc =
      "void Flush() {\n"
      "  Status st = WriteEverything();\n"
      "  if (st.ok()) {\n"
      "    count++;\n"
      "  }\n"
      "}\n";
  const auto findings = Analyze({{"src/fix/drop.cc", cc}});
  ASSERT_TRUE(HasRule(findings, "dropped-error-arm"));
  EXPECT_EQ(findings.front().line, 2);
}

TEST(DroppedErrorArm, ReturningThePathConsumes) {
  const std::string cc =
      "Status Flush() {\n"
      "  Status st = WriteEverything();\n"
      "  if (!st.ok()) return st;\n"
      "  return Status::OK();\n"
      "}\n";
  EXPECT_FALSE(
      HasRule(Analyze({{"src/fix/ok1.cc", cc}}), "dropped-error-arm"));
}

TEST(DroppedErrorArm, LoggingOrIgnoringConsumes) {
  const std::string logged =
      "void Flush() {\n"
      "  Status st = WriteEverything();\n"
      "  if (!st.ok()) {\n"
      "    logging::Error(\"flush\").Kv(\"error\", st.ToString());\n"
      "  }\n"
      "}\n";
  const std::string ignored =
      "void Flush() {\n"
      "  Status st = WriteEverything();\n"
      "  if (st.ok()) count++;\n"
      "  IgnoreStatus(st);\n"
      "}\n";
  EXPECT_FALSE(
      HasRule(Analyze({{"src/fix/ok2.cc", logged}}), "dropped-error-arm"));
  EXPECT_FALSE(
      HasRule(Analyze({{"src/fix/ok3.cc", ignored}}), "dropped-error-arm"));
}

TEST(DroppedErrorArm, ResultValueIsChecked) {
  const std::string cc =
      "void Load() {\n"
      "  Result<int> r = Parse();\n"
      "  if (r.ok()) {\n"
      "    Use(*r);\n"
      "  }\n"
      "}\n";
  EXPECT_TRUE(
      HasRule(Analyze({{"src/fix/drop2.cc", cc}}), "dropped-error-arm"));
}

TEST(DroppedErrorArm, SuppressionSilences) {
  const std::string cc =
      "void Flush() {\n"
      "  // archis-analyze: allow(dropped-error-arm) -- fixture\n"
      "  Status st = WriteEverything();\n"
      "  if (st.ok()) count++;\n"
      "}\n";
  EXPECT_FALSE(
      HasRule(Analyze({{"src/fix/ok4.cc", cc}}), "dropped-error-arm"));
}

// ---- JSON output ----------------------------------------------------------

// A minimal structural validator: object/array nesting balanced outside
// strings, and the expected keys present.
bool JsonIsBalanced(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') --depth;
    if (depth < 0) return false;
  }
  return depth == 0 && !in_string;
}

TEST(JsonOutput, WellFormedWithEscaping) {
  std::vector<Finding> findings(1);
  findings[0].file = "src/a \"b\"\\c.cc";
  findings[0].line = 7;
  findings[0].rule = "lock-cycle";
  findings[0].message = "cycle A -> B\n -> A";
  findings[0].witness = {"step\t1", "step 2"};
  const std::string json = FindingsToJson(findings);
  EXPECT_TRUE(JsonIsBalanced(json)) << json;
  EXPECT_NE(json.find("\"version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"line\":7"), std::string::npos);
  EXPECT_NE(json.find("\\\"b\\\"\\\\c"), std::string::npos) << json;
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
}

TEST(JsonOutput, EmptyFindingsIsValidDocument) {
  const std::string json = FindingsToJson({});
  EXPECT_EQ(json, "{\"version\":1,\"findings\":[]}");
}

// ---- the real tree --------------------------------------------------------

TEST(RealTree, MutexDeclarationsAreRankedAndResolved) {
  // Run over the actual src/ tree (tests execute from build/tests; the
  // source dir is compiled in).
  auto result = AnalyzeTree({ARCHIS_SOURCE_DIR "/src"});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Analyzer& a = result.value();
  EXPECT_TRUE(a.findings().empty());
  EXPECT_GE(a.mutex_decls().size(), 9u);
  for (const auto& d : a.mutex_decls()) {
    EXPECT_FALSE(d.rank.empty()) << d.id << " has no LockRank";
  }
  // The hierarchy table row count matches the declarations.
  const std::string table = a.LockHierarchyTable();
  EXPECT_EQ(static_cast<size_t>(
                std::count(table.begin(), table.end(), '\n')),
            a.mutex_decls().size() + 2);  // header + separator
}

// ---- runtime lock-rank enforcement ----------------------------------------

#if !defined(NDEBUG) && !defined(ARCHIS_TSAN)
TEST(LockRankRuntimeDeathTest, OutOfOrderAcquisitionAborts) {
  // Static analysis predicts kWal (20) may not be acquired while holding
  // kThreadPool (40); the runtime assertion must agree, loudly.
  EXPECT_DEATH(
      {
        Mutex pool(LockRank::kThreadPool);
        Mutex wal(LockRank::kWal);
        MutexLock hold(pool);
        MutexLock violate(wal);
      },
      "lock-rank violation");
}
#endif

TEST(LockRankRuntime, MonotonicAcquisitionIsAllowed) {
  Mutex wal(LockRank::kWal);
  Mutex pool(LockRank::kThreadPool);
  MutexLock a(wal);
  MutexLock b(pool);  // 20 -> 40: increasing, fine
  EXPECT_GE(lock_rank::HeldDepth(), 0);
}

TEST(LockRankRuntime, UnrankedMutexIsExemptEitherWay) {
  Mutex ranked(LockRank::kLogSink);
  Mutex scratch;  // kUnranked
  MutexLock a(ranked);
  MutexLock b(scratch);  // acquiring unranked under the top rank: fine
}

TEST(LockRankRuntime, ManualReleaseRestoresDepth) {
#ifndef NDEBUG
  const int before = lock_rank::HeldDepth();
  Mutex wal(LockRank::kWal);
  wal.Lock();
  EXPECT_EQ(lock_rank::HeldDepth(), before + 1);
  wal.Unlock();
  EXPECT_EQ(lock_rank::HeldDepth(), before);
#endif
}

}  // namespace
}  // namespace archis::analyze
