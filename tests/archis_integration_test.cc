// End-to-end integration tests: current DB -> change capture -> H-tables ->
// queries (translated SQL/XML and native XQuery), mirroring the paper's
// running example (Tables 1-2, Figures 1-4, Queries 1-8).
#include <gtest/gtest.h>

#include "archis/archis.h"
#include "xml/serializer.h"

namespace archis::core {
namespace {

using minirel::DataType;
using minirel::Schema;
using minirel::Tuple;
using minirel::Value;

Schema EmpSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"name", DataType::kString},
                 {"salary", DataType::kInt64},
                 {"title", DataType::kString},
                 {"deptno", DataType::kString}});
}

Date D(int y, int m, int d) { return Date::FromYmd(y, m, d); }

/// Builds the paper's Table 1 history for employee Bob (id 1001):
///   1995-01-01  hired: 60000, Engineer, d01
///   1995-06-01  salary 70000
///   1995-10-01  title Sr Engineer, dept d02
///   1996-02-01  title TechLeader
class PaperExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ArchISOptions opts;
    opts.segment.enabled = true;
    opts.segment.umin = 0.4;
    db_ = std::make_unique<ArchIS>(opts, D(1995, 1, 1));
    RelationSpec spec;
    spec.name = "employees";
    spec.schema = EmpSchema();
    spec.key_columns = {"id"};
    spec.doc_name = "employees.xml";
    ASSERT_TRUE(db_->CreateRelation(spec).ok());
    Put(D(1995, 1, 1), 60000, "Engineer", "d01", /*insert=*/true);
    Put(D(1995, 6, 1), 70000, "Engineer", "d01");
    Put(D(1995, 10, 1), 70000, "Sr Engineer", "d02");
    Put(D(1996, 2, 1), 70000, "TechLeader", "d02");
    ASSERT_TRUE(db_->AdvanceClock(D(1997, 1, 1)).ok());
  }

  void Put(Date when, int64_t salary, const std::string& title,
           const std::string& dept, bool insert = false) {
    ASSERT_TRUE(db_->AdvanceClock(when).ok());
    Tuple row{Value(int64_t{1001}), Value("Bob"), Value(salary),
              Value(title), Value(dept)};
    if (insert) {
      ASSERT_TRUE(db_->Insert("employees", row).ok());
    } else {
      ASSERT_TRUE(db_->Update("employees", {Value(int64_t{1001})}, row).ok());
    }
  }

  std::unique_ptr<ArchIS> db_;
};

TEST_F(PaperExampleTest, SnapshotReconstructsCurrentRow) {
  auto snap = db_->Snapshot("employees", D(1995, 7, 15));
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  ASSERT_EQ(snap->size(), 1u);
  const Tuple& row = (*snap)[0];
  EXPECT_EQ(row.at(0).AsInt(), 1001);
  EXPECT_EQ(row.at(1).AsString(), "Bob");
  EXPECT_EQ(row.at(2).AsInt(), 70000);
  EXPECT_EQ(row.at(3).AsString(), "Engineer");
  EXPECT_EQ(row.at(4).AsString(), "d01");
}

TEST_F(PaperExampleTest, SnapshotBeforeHireIsEmpty) {
  auto snap = db_->Snapshot("employees", D(1994, 12, 31));
  ASSERT_TRUE(snap.ok());
  EXPECT_TRUE(snap->empty());
}

TEST_F(PaperExampleTest, HistoryIsTemporallyGrouped) {
  // The salary history has exactly two versions (60000, 70000) even though
  // four updates ran — unchanged attributes keep their interval.
  auto set = db_->archiver().htables("employees");
  ASSERT_TRUE(set.ok());
  auto salary = (*set)->attribute_store("salary");
  ASSERT_TRUE(salary.ok());
  std::vector<std::pair<int64_t, TimeInterval>> versions;
  ASSERT_TRUE((*salary)
                  ->ScanHistory([&](const Tuple& row) {
                    versions.push_back(
                        {row.at(1).AsInt(),
                         TimeInterval(row.at(2).AsDate(),
                                      row.at(3).AsDate())});
                    return true;
                  })
                  .ok());
  ASSERT_EQ(versions.size(), 2u);
  EXPECT_EQ(versions[0].first, 60000);
  EXPECT_EQ(versions[0].second.tstart, D(1995, 1, 1));
  EXPECT_EQ(versions[0].second.tend, D(1995, 5, 31));  // paper Table 1
  EXPECT_EQ(versions[1].first, 70000);
  EXPECT_EQ(versions[1].second.tstart, D(1995, 6, 1));
  EXPECT_TRUE(versions[1].second.is_current());

  // Title has three versions; name has one.
  auto title = (*set)->attribute_store("title");
  ASSERT_TRUE(title.ok());
  EXPECT_EQ((*title)->LogicalTuples(), 3u);
  auto name = (*set)->attribute_store("name");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ((*name)->LogicalTuples(), 1u);
}

TEST_F(PaperExampleTest, PublishedHDocumentMatchesFigure3Shape) {
  auto doc = db_->PublishHistory("employees");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ((*doc)->name(), "employees");
  auto employees = (*doc)->ChildrenNamed("employee");
  ASSERT_EQ(employees.size(), 1u);
  const auto& bob = employees[0];
  EXPECT_EQ(bob->ChildrenNamed("name").size(), 1u);
  EXPECT_EQ(bob->ChildrenNamed("salary").size(), 2u);
  EXPECT_EQ(bob->ChildrenNamed("title").size(), 3u);
  EXPECT_EQ(bob->ChildrenNamed("deptno").size(), 2u);
  // Temporal covering constraint: employee interval covers all children.
  auto bob_iv = bob->Interval();
  ASSERT_TRUE(bob_iv.ok());
  for (const auto& child : bob->ChildElements()) {
    auto iv = child->Interval();
    ASSERT_TRUE(iv.ok());
    EXPECT_TRUE(bob_iv->Contains(*iv))
        << child->name() << " " << iv->ToString() << " not in "
        << bob_iv->ToString();
  }
}

TEST_F(PaperExampleTest, Query1TemporalProjectionTranslated) {
  // Paper QUERY 1: title history of Bob.
  auto result = db_->Query(
      "element title_history {"
      "  for $t in doc(\"employees.xml\")/employees/employee[name=\"Bob\"]"
      "           /title return $t }");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->path, QueryPath::kTranslated) << result->sql;
  auto hist = result->xml->ChildrenNamed("title_history");
  ASSERT_EQ(hist.size(), 1u);
  auto titles = hist[0]->ChildrenNamed("title");
  ASSERT_EQ(titles.size(), 3u);
  EXPECT_EQ(titles[0]->StringValue(), "Engineer");
  EXPECT_EQ(titles[1]->StringValue(), "Sr Engineer");
  EXPECT_EQ(titles[2]->StringValue(), "TechLeader");
  // SQL/XML rendering names the H-tables.
  EXPECT_NE(result->sql.find("employees_title"), std::string::npos);
  EXPECT_NE(result->sql.find("XMLAgg"), std::string::npos);
}

TEST_F(PaperExampleTest, Query2SnapshotTranslated) {
  auto result = db_->Query(
      "for $m in doc(\"employees.xml\")/employees/employee/salary"
      "[tstart(.) <= xs:date(\"1995-07-15\") and "
      " tend(.) >= xs:date(\"1995-07-15\")] return $m");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->path, QueryPath::kTranslated);
  auto salaries = result->xml->ChildrenNamed("salary");
  ASSERT_EQ(salaries.size(), 1u);
  EXPECT_EQ(salaries[0]->StringValue(), "70000");
}

TEST_F(PaperExampleTest, Query3SlicingTranslated) {
  auto result = db_->Query(
      "for $e in doc(\"employees.xml\")/employees/employee"
      "[toverlaps(., telement(xs:date(\"1995-02-01\"),"
      " xs:date(\"1995-03-01\")))] return $e/name");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->path, QueryPath::kTranslated);
  auto names = result->xml->ChildrenNamed("name");
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0]->StringValue(), "Bob");
}

TEST_F(PaperExampleTest, TranslatedAndNativeAgree) {
  const std::string query =
      "for $t in doc(\"employees.xml\")/employees/employee[name=\"Bob\"]"
      "/title return $t";
  auto translated = db_->Query(query);
  ASSERT_TRUE(translated.ok());
  ASSERT_EQ(translated->path, QueryPath::kTranslated);
  auto native = db_->QueryNative(query);
  ASSERT_TRUE(native.ok()) << native.status().ToString();
  ASSERT_EQ(native->size(), 3u);
  auto titles = translated->xml->ChildrenNamed("title");
  ASSERT_EQ(titles.size(), native->size());
  for (size_t i = 0; i < titles.size(); ++i) {
    EXPECT_EQ(titles[i]->StringValue(), (*native)[i].node()->StringValue());
    EXPECT_EQ(*titles[i]->Attr("tstart"),
              *(*native)[i].node()->Attr("tstart"));
  }
}

TEST_F(PaperExampleTest, NativeFallbackForRestructuringQuery) {
  // Paper QUERY 6 (restructuring) is outside the translator subset.
  auto result = db_->Query(
      "for $e in doc(\"employees.xml\")/employees/employee[name=\"Bob\"] "
      "let $d := $e/deptno let $t := $e/title "
      "let $overlaps := restructure($d, $t) "
      "return max($overlaps)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->path, QueryPath::kNativeFallback);
  // Longest unchanged (dept,title) period: the ongoing d02+TechLeader run,
  // 1996-02-01 .. current date (1997-01-01) = 336 days, beating the closed
  // d01+Engineer run of 273 days.
  ASSERT_FALSE(result->xml->StringValue().empty());
  EXPECT_EQ(result->xml->StringValue(), "336");
}

TEST_F(PaperExampleTest, DeleteClosesAllIntervals) {
  ASSERT_TRUE(db_->AdvanceClock(D(1997, 6, 1)).ok());
  ASSERT_TRUE(db_->Delete("employees", {Value(int64_t{1001})}).ok());
  auto snap_before = db_->Snapshot("employees", D(1997, 5, 1));
  ASSERT_TRUE(snap_before.ok());
  EXPECT_EQ(snap_before->size(), 1u);
  auto snap_after = db_->Snapshot("employees", D(1997, 7, 1));
  ASSERT_TRUE(snap_after.ok());
  EXPECT_TRUE(snap_after->empty());
}

TEST_F(PaperExampleTest, UpdateRejectsKeyChange) {
  ASSERT_TRUE(db_->AdvanceClock(D(1997, 6, 1)).ok());
  Tuple row{Value(int64_t{9999}), Value("Bob"), Value(int64_t{1}),
            Value("x"), Value("d01")};
  Status st = db_->Update("employees", {Value(int64_t{1001})}, row);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST_F(PaperExampleTest, ClockCannotGoBackwards) {
  EXPECT_EQ(db_->AdvanceClock(D(1990, 1, 1)).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace archis::core
