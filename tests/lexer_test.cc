// Unit tests for the XQuery lexer: token classification, namespace-
// qualified names vs ':=', comments, raw-mode resynchronisation.
#include <gtest/gtest.h>

#include "xquery/lexer.h"

namespace archis::xquery {
namespace {

std::vector<Token> LexAll(const std::string& input) {
  Lexer lexer(input);
  EXPECT_TRUE(lexer.Tokenize().ok());
  std::vector<Token> tokens;
  while (lexer.Peek().kind != TokenKind::kEnd) tokens.push_back(lexer.Next());
  return tokens;
}

TEST(LexerTest, ClassifiesBasicTokens) {
  auto toks = LexAll("for $e in doc(\"a.xml\")/b[c >= 3.5] return $e");
  ASSERT_GE(toks.size(), 10u);
  EXPECT_TRUE(toks[0].IsName("for"));
  EXPECT_EQ(toks[1].kind, TokenKind::kVariable);
  EXPECT_EQ(toks[1].text, "e");
  EXPECT_TRUE(toks[2].IsName("in"));
  EXPECT_TRUE(toks[3].IsName("doc"));
  // The string literal keeps its contents, quotes stripped.
  bool found_string = false;
  for (const Token& t : toks) {
    if (t.kind == TokenKind::kString) {
      EXPECT_EQ(t.text, "a.xml");
      found_string = true;
    }
  }
  EXPECT_TRUE(found_string);
  // >= lexes as one symbol; the number carries its value.
  bool found_ge = false, found_num = false;
  for (const Token& t : toks) {
    if (t.IsSymbol(">=")) found_ge = true;
    if (t.kind == TokenKind::kNumber) {
      EXPECT_DOUBLE_EQ(t.number, 3.5);
      found_num = true;
    }
  }
  EXPECT_TRUE(found_ge);
  EXPECT_TRUE(found_num);
}

TEST(LexerTest, QualifiedNamesVsAssign) {
  // xs:date must lex as ONE name; `let $x := ...` must lex ':=' separately.
  auto toks = LexAll("let $x := xs:date(\"1994-05-06\")");
  ASSERT_GE(toks.size(), 4u);
  EXPECT_TRUE(toks[0].IsName("let"));
  EXPECT_EQ(toks[1].kind, TokenKind::kVariable);
  EXPECT_TRUE(toks[2].IsSymbol(":="));
  EXPECT_TRUE(toks[3].IsName("xs:date"));
}

TEST(LexerTest, NestedCommentsSkip) {
  auto toks = LexAll("(: outer (: inner :) still outer :) $x");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokenKind::kVariable);
}

TEST(LexerTest, SingleQuotedStrings) {
  auto toks = LexAll("'hello \"nested\" world'");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokenKind::kString);
  EXPECT_EQ(toks[0].text, "hello \"nested\" world");
}

TEST(LexerTest, ErrorsOnBadInput) {
  Lexer unterminated("\"never closed");
  EXPECT_FALSE(unterminated.Tokenize().ok());
  Lexer bare_dollar("$ x");
  EXPECT_FALSE(bare_dollar.Tokenize().ok());
  Lexer bad_char("a # b");
  EXPECT_FALSE(bad_char.Tokenize().ok());
  Lexer open_comment("(: never closed");
  EXPECT_FALSE(open_comment.Tokenize().ok());
}

TEST(LexerTest, ResyncSkipsRawRegion) {
  // The parser consumes `<emp>text</emp>` raw, then resyncs the lexer to
  // the first token after it.
  std::string input = "return <emp>text</emp> and $y";
  Lexer lexer(input);
  ASSERT_TRUE(lexer.Tokenize().ok());
  ASSERT_TRUE(lexer.Next().IsName("return"));
  size_t raw_start = lexer.SourceOffsetOfNextToken();
  EXPECT_EQ(input[raw_start], '<');
  size_t raw_end = input.find("</emp>") + 6;
  lexer.ResyncToSourceOffset(raw_end);
  EXPECT_TRUE(lexer.Next().IsName("and"));
  EXPECT_EQ(lexer.Next().kind, TokenKind::kVariable);
}

TEST(LexerTest, PositionSaveRestore) {
  Lexer lexer("a b c");
  ASSERT_TRUE(lexer.Tokenize().ok());
  size_t mark = lexer.position();
  lexer.Next();
  lexer.Next();
  EXPECT_TRUE(lexer.Peek().IsName("c"));
  lexer.set_position(mark);
  EXPECT_TRUE(lexer.Peek().IsName("a"));
}

TEST(LexerTest, OffsetsPointIntoSource) {
  std::string input = "for  $x";
  Lexer lexer(input);
  ASSERT_TRUE(lexer.Tokenize().ok());
  EXPECT_EQ(lexer.Peek(0).offset, 0u);
  EXPECT_EQ(lexer.Peek(1).offset, 5u);  // after the double space
}

}  // namespace
}  // namespace archis::xquery
