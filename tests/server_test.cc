// archisd front-end tests: wire protocol robustness, admission control
// (shed with kOverloaded, never a silent drop), per-request deadlines,
// graceful shutdown, and the HTTP shim.
//
// Tests talk to an in-process ArchisServer on an ephemeral loopback
// port — through server::ArchisClient for happy paths, and through raw
// sockets when the point is to send bytes no well-behaved client would.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "archis/archis.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "workload/employee_workload.h"

namespace archis::server {
namespace {

using core::ArchIS;
using core::ArchISOptions;

constexpr const char* kNamesQuery =
    "for $e in doc(\"employees.xml\")/employees/employee return $e/name";

/// Builds an in-memory store with a small employee history.
std::unique_ptr<ArchIS> MakeDb(int employees = 20, int years = 2) {
  workload::WorkloadConfig config;
  config.initial_employees = employees;
  config.years = years;
  auto db = std::make_unique<ArchIS>(ArchISOptions{}, config.start_date);
  workload::EmployeeWorkload wl(config);
  auto stats = wl.Generate(db.get());
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(db->FreezeAll().ok());
  return db;
}

std::unique_ptr<ArchisServer> MustStart(ArchIS* db, ServerOptions opts) {
  auto server = ArchisServer::Start(db, opts);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return std::move(*server);
}

ClientOptions ClientFor(const ArchisServer& server) {
  ClientOptions opts;
  opts.port = server.port();
  return opts;
}

/// Raw loopback connection for protocol-abuse tests.
int RawConnect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << std::strerror(errno);
  return fd;
}

// -- Round trips -------------------------------------------------------------

TEST(ServerTest, PingQueryUpdateRoundtrip) {
  auto db = MakeDb();
  auto server = MustStart(db.get(), ServerOptions{});
  ArchisClient client(ClientFor(*server));

  ASSERT_TRUE(client.Ping().ok());

  auto result = client.Query(kNamesQuery);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(result->find("<results>"), std::string::npos);
  EXPECT_NE(result->find("<name"), std::string::npos);

  auto ack = client.UpdateBatch(
      "insert employees|777001|Wire Person|50000|Engineer|D1\n"
      "update employees|777001|Wire Person|60000|Engineer|D1\n");
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(*ack, "committed 2");

  auto check = client.Query(
      "for $e in doc(\"employees.xml\")/employees/employee[id=777001] "
      "return $e/salary");
  ASSERT_TRUE(check.ok());
  EXPECT_NE(check->find("60000"), std::string::npos);
}

TEST(ServerTest, UpdateBatchIsAtomic) {
  auto db = MakeDb();
  auto server = MustStart(db.get(), ServerOptions{});
  ArchisClient client(ClientFor(*server));

  // Second line is garbage -> whole batch must roll back.
  auto ack = client.UpdateBatch(
      "insert employees|777002|Half Person|1000|Engineer|D1\n"
      "insert employees|notanumber|X|1|Y|D1\n");
  ASSERT_FALSE(ack.ok());
  EXPECT_EQ(ack.status().code(), StatusCode::kInvalidArgument);

  auto check = client.Query(
      "for $e in doc(\"employees.xml\")/employees/employee[id=777002] "
      "return $e/name");
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->find("Half"), std::string::npos);
}

TEST(ServerTest, QueryErrorsCarryWireStatus) {
  auto db = MakeDb();
  auto server = MustStart(db.get(), ServerOptions{});
  ArchisClient client(ClientFor(*server));

  auto result = client.Query("for $x in doc(\"nosuch.xml\")/a return $x");
  ASSERT_FALSE(result.ok());
  EXPECT_FALSE(result.status().message().empty());
}

// -- Protocol robustness -----------------------------------------------------

TEST(ServerTest, TruncatedLengthPrefixDoesNotWedgeServer) {
  auto db = MakeDb();
  auto server = MustStart(db.get(), ServerOptions{});

  // Two bytes of a four-byte length prefix, then close.
  const int fd = RawConnect(server->port());
  ASSERT_EQ(::send(fd, "\x05\x00", 2, 0), 2);
  ::close(fd);

  // The server must shrug it off and keep serving others.
  ArchisClient client(ClientFor(*server));
  EXPECT_TRUE(client.Ping().ok());
}

TEST(ServerTest, OversizedFrameRejectedWithoutAllocation) {
  auto db = MakeDb();
  auto server = MustStart(db.get(), ServerOptions{});

  // Claim a 256 MiB payload. The server must answer with an error frame
  // based on the prefix alone — if it tried to read (or allocate) the
  // claimed size, the response could never arrive (we send no payload).
  const int fd = RawConnect(server->port());
  const uint32_t huge = 256u << 20;
  unsigned char header[5] = {
      static_cast<unsigned char>(huge & 0xff),
      static_cast<unsigned char>((huge >> 8) & 0xff),
      static_cast<unsigned char>((huge >> 16) & 0xff),
      static_cast<unsigned char>((huge >> 24) & 0xff),
      static_cast<unsigned char>(FrameType::kQuery)};
  ASSERT_EQ(::send(fd, header, sizeof(header), 0), 5);

  Result<Frame> resp = ReadFrame(fd);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->type, static_cast<uint8_t>(WireStatus::kInvalidArgument));
  EXPECT_NE(resp->payload.find("frame too large"), std::string::npos);
  ::close(fd);

  ArchisClient client(ClientFor(*server));
  EXPECT_TRUE(client.Ping().ok());
}

TEST(ServerTest, GarbageFrameTypeAnsweredAndClosed) {
  auto db = MakeDb();
  auto server = MustStart(db.get(), ServerOptions{});

  const int fd = RawConnect(server->port());
  // Valid length (3), nonsense type 0xEE, payload "abc".
  ASSERT_EQ(::send(fd, "\x03\x00\x00\x00\xee" "abc", 8, 0), 8);
  Result<Frame> resp = ReadFrame(fd);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->type, static_cast<uint8_t>(WireStatus::kInvalidArgument));
  ::close(fd);

  ArchisClient client(ClientFor(*server));
  EXPECT_TRUE(client.Ping().ok());
}

TEST(ServerTest, HalfOpenConnectionDoesNotBlockShutdown) {
  auto db = MakeDb();
  auto server = MustStart(db.get(), ServerOptions{});

  // Connect and go silent; also one that stalls mid-frame.
  const int idle = RawConnect(server->port());
  const int stalled = RawConnect(server->port());
  ASSERT_EQ(::send(stalled, "\x09\x00", 2, 0), 2);

  // Other clients still get service.
  ArchisClient client(ClientFor(*server));
  EXPECT_TRUE(client.Ping().ok());

  // Graceful stop must complete promptly despite both zombies.
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(server->Stop().ok());
  const auto secs = std::chrono::duration_cast<std::chrono::seconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  EXPECT_LT(secs, 10);
  ::close(idle);
  ::close(stalled);
}

// -- Deadlines ---------------------------------------------------------------

TEST(ServerTest, FacadeQueryDeadlineCancelsBeforeExecution) {
  auto db = MakeDb();
  core::QueryOptions opts;
  opts.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  auto result = db->Query(kNamesQuery, opts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(ServerTest, ExecutorObservesDeadlineMidPlan) {
  auto db = MakeDb(100, 3);
  auto plan = db->Translate(kNamesQuery);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  // Tighten the deadline until the executor cancels. The final iteration
  // (deadline already passed) is guaranteed to cancel at the first scan
  // boundary, so the loop always terminates with a kDeadlineExceeded
  // proof; earlier iterations may catch it genuinely mid-scan.
  bool cancelled = false;
  for (int64_t us : {1000, 100, 10, 1, 0, -1000000}) {
    core::PlanStats stats;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::microseconds(us);
    auto result = db->Execute(*plan, &stats, nullptr,
                              core::PlanForce::kAuto, deadline);
    if (!result.ok()) {
      ASSERT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
      cancelled = true;
      break;
    }
  }
  EXPECT_TRUE(cancelled);
}

TEST(ServerTest, RequestStaleInQueueAnsweredDeadlineExceeded) {
  auto db = MakeDb();
  ServerOptions opts;
  opts.workers = 1;
  // Every worker sleeps 100 ms before executing, so a 10 ms deadline is
  // deterministically stale by execution time.
  opts.test_delay_ms = 100;
  auto server = MustStart(db.get(), opts);
  ArchisClient client(ClientFor(*server));

  auto result = client.Query(kNamesQuery, /*deadline_ms=*/10);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);

  // Without a deadline the same query still succeeds.
  auto fine = client.Query(kNamesQuery);
  EXPECT_TRUE(fine.ok()) << fine.status().ToString();
}

// -- Admission control -------------------------------------------------------

TEST(ServerTest, SaturatedQueueShedsWithOverloadedNotSilence) {
  auto db = MakeDb();
  ServerOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 1;
  opts.test_delay_ms = 150;  // one slow worker + depth-1 queue
  auto server = MustStart(db.get(), opts);

  constexpr int kClients = 6;
  std::atomic<int> ok_count{0};
  std::atomic<int> overloaded{0};
  std::atomic<int> other{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&] {
      ArchisClient client(ClientFor(*server));
      auto result = client.Query(kNamesQuery);
      if (result.ok()) {
        ok_count.fetch_add(1);
      } else if (result.status().code() == StatusCode::kOverloaded) {
        overloaded.fetch_add(1);
      } else {
        other.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();

  // Every request got SOME answer (no silent drops, no hang): the three
  // counters account for all clients. With one worker stalled 150 ms and
  // a queue of one, at most ~2 can be in flight; the rest must shed.
  EXPECT_EQ(ok_count.load() + overloaded.load() + other.load(), kClients);
  EXPECT_EQ(other.load(), 0);
  EXPECT_GE(overloaded.load(), 1);
  EXPECT_GE(ok_count.load(), 1);
}

// -- Graceful shutdown -------------------------------------------------------

TEST(ServerTest, StopDrainsInFlightRequests) {
  auto db = MakeDb();
  ServerOptions opts;
  opts.workers = 1;
  opts.test_delay_ms = 100;
  auto server = MustStart(db.get(), opts);

  // Launch a request that will still be queued when Stop begins.
  std::atomic<bool> got_answer{false};
  std::thread requester([&] {
    ArchisClient client(ClientFor(*server));
    auto result = client.Query(kNamesQuery);
    // Admitted before Stop -> must be drained and succeed.
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    got_answer.store(true);
  });
  // Give the request time to be admitted, then stop.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(server->Stop().ok());
  requester.join();
  EXPECT_TRUE(got_answer.load());

  // After Stop the listener is gone: connects fail.
  ClientOptions copts = ClientFor(*server);
  copts.reconnect = false;
  ArchisClient late(copts);
  EXPECT_FALSE(late.Ping().ok());
}

// -- HTTP shim ---------------------------------------------------------------

std::string HttpRequest(int port, const std::string& raw) {
  const int fd = RawConnect(port);
  EXPECT_EQ(::send(fd, raw.data(), raw.size(), 0),
            static_cast<ssize_t>(raw.size()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(ServerTest, HttpMetricsScrape) {
  auto db = MakeDb();
  ServerOptions opts;
  opts.http_port = 0;
  auto server = MustStart(db.get(), opts);
  ASSERT_GT(server->http_port(), 0);

  const std::string response = HttpRequest(
      server->http_port(), "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_EQ(response.rfind("HTTP/1.0 200 OK", 0), 0u);
  EXPECT_NE(response.find("archis_server_requests_total"), std::string::npos);
  EXPECT_NE(response.find("# TYPE"), std::string::npos);
}

TEST(ServerTest, HttpPostQuery) {
  auto db = MakeDb();
  ServerOptions opts;
  opts.http_port = 0;
  auto server = MustStart(db.get(), opts);

  const std::string body = kNamesQuery;
  const std::string response = HttpRequest(
      server->http_port(),
      "POST /query HTTP/1.0\r\nContent-Length: " +
          std::to_string(body.size()) + "\r\n\r\n" + body);
  EXPECT_EQ(response.rfind("HTTP/1.0 200 OK", 0), 0u);
  EXPECT_NE(response.find("<results>"), std::string::npos);
}

TEST(ServerTest, HttpUnknownRouteIs404) {
  auto db = MakeDb();
  ServerOptions opts;
  opts.http_port = 0;
  auto server = MustStart(db.get(), opts);

  const std::string response =
      HttpRequest(server->http_port(), "GET /nope HTTP/1.0\r\n\r\n");
  EXPECT_EQ(response.rfind("HTTP/1.0 404", 0), 0u);
}

// -- Facade support ----------------------------------------------------------

TEST(ServerTest, KeyColumnsAccessor) {
  auto db = MakeDb();
  auto cols = db->KeyColumns("employees");
  ASSERT_TRUE(cols.ok());
  ASSERT_EQ(cols->size(), 1u);
  EXPECT_EQ((*cols)[0], "id");
  EXPECT_FALSE(db->KeyColumns("nonexistent").ok());
}

}  // namespace
}  // namespace archis::server
