// Unit + property tests for temporal/: coalescing, restructuring, sweep
// aggregates, and `now` handling.
#include <gtest/gtest.h>

#include <random>

#include "temporal/aggregate.h"
#include "temporal/coalesce.h"
#include "temporal/now.h"
#include "temporal/restructure.h"

namespace archis::temporal {
namespace {

Date D(int y, int m, int d) { return Date::FromYmd(y, m, d); }
TimeInterval IV(Date a, Date b) { return TimeInterval(a, b); }

TEST(CoalesceTest, MergesOverlappingAndAdjacent) {
  auto out = CoalesceIntervals({
      IV(D(1995, 1, 1), D(1995, 3, 31)),
      IV(D(1995, 4, 1), D(1995, 6, 30)),   // adjacent
      IV(D(1995, 6, 1), D(1995, 8, 31)),   // overlapping
      IV(D(1996, 1, 1), D(1996, 2, 1)),    // disjoint
  });
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], IV(D(1995, 1, 1), D(1995, 8, 31)));
  EXPECT_EQ(out[1], IV(D(1996, 1, 1), D(1996, 2, 1)));
}

TEST(CoalesceTest, KeepsDistinctValuesApart) {
  auto out = CoalesceValues({
      {"60000", IV(D(1995, 1, 1), D(1995, 5, 31))},
      {"70000", IV(D(1995, 6, 1), D(1995, 9, 30))},
      {"60000", IV(D(1995, 6, 1), D(1995, 7, 31))},  // same value, adjacent
  });
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].value, "60000");
  EXPECT_EQ(out[0].interval, IV(D(1995, 1, 1), D(1995, 7, 31)));
  EXPECT_EQ(out[1].value, "70000");
}

class CoalesceProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CoalesceProperty, IdempotentAndCoverancePreserving) {
  std::mt19937 rng(GetParam());
  std::vector<TimeInterval> input;
  for (int i = 0; i < 60; ++i) {
    Date start = D(1990, 1, 1).AddDays(static_cast<int64_t>(rng() % 2000));
    input.push_back(IV(start, start.AddDays(static_cast<int64_t>(
                                  rng() % 200))));
  }
  auto once = CoalesceIntervals(input);
  auto twice = CoalesceIntervals(once);
  EXPECT_EQ(once, twice);  // idempotent
  // Output is disjoint, non-adjacent, sorted.
  for (size_t i = 1; i < once.size(); ++i) {
    EXPECT_LT(once[i - 1].tend.AddDays(1), once[i].tstart);
  }
  // Same day-coverage.
  auto covered = [](const std::vector<TimeInterval>& ivs, Date d) {
    for (const auto& iv : ivs) {
      if (iv.Contains(d)) return true;
    }
    return false;
  };
  for (int probe = 0; probe < 300; ++probe) {
    Date d = D(1990, 1, 1).AddDays(static_cast<int64_t>(rng() % 2300));
    EXPECT_EQ(covered(input, d), covered(once, d)) << d.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoalesceProperty,
                         ::testing::Values(11u, 22u, 33u, 44u));

xml::XmlNodePtr MkTimed(const std::string& tag, const std::string& v,
                        TimeInterval iv) {
  auto n = xml::XmlNode::Element(tag);
  n->SetInterval(iv);
  n->AppendText(v);
  return n;
}

TEST(CoalesceTest, NodeFlavourPreservesTag) {
  auto out = CoalesceNodes(
      {MkTimed("salary", "70000", IV(D(1995, 6, 1), D(1995, 9, 30))),
       MkTimed("salary", "70000", IV(D(1995, 10, 1), D(1996, 1, 1)))});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0]->name(), "salary");
  EXPECT_EQ((*out)[0]->StringValue(), "70000");
  EXPECT_EQ(*(*out)[0]->Interval(), IV(D(1995, 6, 1), D(1996, 1, 1)));
}

TEST(CoalesceTest, NodeFlavourGroupsByTagNotAcross) {
  // salary and title histories interleaved in one sequence: coalescing
  // must merge within each tag and never across tags, and the output
  // keeps first-appearance tag order.
  auto out = CoalesceNodes(
      {MkTimed("salary", "70000", IV(D(1995, 1, 1), D(1995, 6, 30))),
       MkTimed("title", "Engineer", IV(D(1995, 1, 1), D(1995, 12, 31))),
       MkTimed("salary", "70000", IV(D(1995, 7, 1), D(1995, 12, 31))),
       MkTimed("title", "Engineer", IV(D(1996, 1, 1), D(1996, 6, 30)))});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 2u);
  EXPECT_EQ((*out)[0]->name(), "salary");
  EXPECT_EQ(*(*out)[0]->Interval(), IV(D(1995, 1, 1), D(1995, 12, 31)));
  EXPECT_EQ((*out)[1]->name(), "title");
  EXPECT_EQ(*(*out)[1]->Interval(), IV(D(1995, 1, 1), D(1996, 6, 30)));
}

TEST(CoalesceTest, NodeFlavourRejectsInvalidInterval) {
  auto good = MkTimed("salary", "70000", IV(D(1995, 1, 1), D(1995, 6, 30)));
  auto bad = xml::XmlNode::Element("salary");
  bad->AppendText("80000");  // no tstart/tend at all
  auto out = CoalesceNodes({good, bad});
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(out.status().message().find("salary"), std::string::npos);
}

TEST(CoalesceTest, NodeFlavourMergesAdjacentAtForever) {
  // A closed interval adjacent to one running to the `now` sentinel must
  // merge without Meets() overflowing past Forever.
  auto out = CoalesceNodes(
      {MkTimed("salary", "70000", IV(D(1995, 1, 1), D(1995, 6, 30))),
       MkTimed("salary", "70000", IV(D(1995, 7, 1), Date::Forever()))});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(*(*out)[0]->Interval(), IV(D(1995, 1, 1), Date::Forever()));
  EXPECT_TRUE((*out)[0]->Interval()->is_current());
}

TEST(IntervalTest, MeetsGuardsForeverSentinel) {
  TimeInterval current = IV(D(1995, 1, 1), Date::Forever());
  TimeInterval later = IV(Date::Forever().AddDays(1), Date::Forever());
  // A current interval meets nothing: its end is `now`, not a real day,
  // and AddDays(1) past the sentinel must not fabricate adjacency.
  EXPECT_FALSE(current.Meets(later));
  EXPECT_FALSE(current.Meets(current));
  TimeInterval closed = IV(D(1995, 1, 1), D(1995, 6, 30));
  EXPECT_TRUE(closed.Meets(IV(D(1995, 7, 1), Date::Forever())));
}

TEST(RestructureTest, PairwiseIntersections) {
  auto out = RestructureIntervals(
      {IV(D(1995, 1, 1), D(1995, 9, 30)), IV(D(1995, 10, 1), D(1996, 12, 31))},
      {IV(D(1995, 1, 1), D(1995, 5, 31)), IV(D(1995, 6, 1), D(1996, 12, 31))});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], IV(D(1995, 1, 1), D(1995, 5, 31)));
  EXPECT_EQ(out[1], IV(D(1995, 6, 1), D(1995, 9, 30)));
  EXPECT_EQ(out[2], IV(D(1995, 10, 1), D(1996, 12, 31)));
}

TEST(RestructureTest, MaxDurationResolvesNow) {
  std::vector<TimeInterval> ivs = {IV(D(1995, 1, 1), D(1995, 1, 10)),
                                   IV(D(1996, 1, 1), Date::Forever())};
  EXPECT_EQ(MaxDurationDays(ivs, D(1996, 1, 5)), 10);  // live one is 5 days
  EXPECT_EQ(MaxDurationDays(ivs, D(1996, 3, 1)), 61);  // now it dominates
  EXPECT_EQ(MaxDurationDays({}, D(1996, 1, 1)), 0);
}

TEST(AggregateTest, TavgStepHistoryHandComputed) {
  // Two employees: A earns 100 all year, B earns 300 for the middle third.
  std::vector<TimedNumber> facts = {
      {100, IV(D(2000, 1, 1), D(2000, 12, 31))},
      {300, IV(D(2000, 5, 1), D(2000, 8, 31))},
  };
  auto steps = TemporalAggregate(facts, TemporalAggFn::kAvg);
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps[0].interval, IV(D(2000, 1, 1), D(2000, 4, 30)));
  EXPECT_DOUBLE_EQ(steps[0].value, 100);
  EXPECT_EQ(steps[1].interval, IV(D(2000, 5, 1), D(2000, 8, 31)));
  EXPECT_DOUBLE_EQ(steps[1].value, 200);
  EXPECT_EQ(steps[2].interval, IV(D(2000, 9, 1), D(2000, 12, 31)));
  EXPECT_DOUBLE_EQ(steps[2].value, 100);
}

TEST(AggregateTest, SumCountMaxMin) {
  std::vector<TimedNumber> facts = {
      {10, IV(D(2000, 1, 1), D(2000, 1, 31))},
      {20, IV(D(2000, 1, 15), D(2000, 2, 15))},
  };
  auto sum = TemporalAggregate(facts, TemporalAggFn::kSum);
  ASSERT_EQ(sum.size(), 3u);
  EXPECT_DOUBLE_EQ(sum[1].value, 30);
  auto count = TemporalAggregate(facts, TemporalAggFn::kCount);
  EXPECT_DOUBLE_EQ(count[1].value, 2);
  auto mx = TemporalAggregate(facts, TemporalAggFn::kMax);
  EXPECT_DOUBLE_EQ(mx[0].value, 10);
  EXPECT_DOUBLE_EQ(mx[1].value, 20);
  auto mn = TemporalAggregate(facts, TemporalAggFn::kMin);
  EXPECT_DOUBLE_EQ(mn[1].value, 10);
  EXPECT_DOUBLE_EQ(mn[2].value, 20);
}

TEST(AggregateTest, LiveFactsRunToForever) {
  std::vector<TimedNumber> facts = {{50, IV(D(2000, 1, 1), Date::Forever())}};
  auto steps = TemporalAggregate(facts, TemporalAggFn::kAvg);
  ASSERT_EQ(steps.size(), 1u);
  EXPECT_TRUE(steps.back().interval.is_current());
}

class AggregateProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(AggregateProperty, SweepMatchesBruteForceDayByDay) {
  std::mt19937 rng(GetParam());
  std::vector<TimedNumber> facts;
  for (int i = 0; i < 40; ++i) {
    Date start = D(2000, 1, 1).AddDays(static_cast<int64_t>(rng() % 300));
    facts.push_back({static_cast<double>(rng() % 1000),
                     IV(start, start.AddDays(static_cast<int64_t>(
                                   rng() % 150)))});
  }
  auto steps = TemporalAggregate(facts, TemporalAggFn::kAvg);
  // Steps are disjoint and ordered.
  for (size_t i = 1; i < steps.size(); ++i) {
    EXPECT_LT(steps[i - 1].interval.tend, steps[i].interval.tstart);
  }
  // Brute force: for sampled days, compute avg directly.
  for (int probe = 0; probe < 200; ++probe) {
    Date d = D(2000, 1, 1).AddDays(static_cast<int64_t>(rng() % 500));
    double sum = 0;
    int64_t n = 0;
    for (const auto& f : facts) {
      if (f.interval.Contains(d)) {
        sum += f.value;
        ++n;
      }
    }
    double expect = n == 0 ? -1 : sum / static_cast<double>(n);
    double got = -1;
    for (const auto& s : steps) {
      if (s.interval.Contains(d)) got = s.value;
    }
    EXPECT_NEAR(got, expect, 1e-9) << d.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregateProperty,
                         ::testing::Values(3u, 7u, 31u, 127u));

TEST(AggregateTest, RisingIntervalsFindsRuns) {
  std::vector<AggregateStep> hist = {
      {IV(D(2000, 1, 1), D(2000, 1, 31)), 10, 1},
      {IV(D(2000, 2, 1), D(2000, 2, 29)), 20, 1},  // 2000 is a leap year
      {IV(D(2000, 3, 1), D(2000, 3, 31)), 30, 1},
      {IV(D(2000, 4, 1), D(2000, 4, 30)), 5, 1},
      {IV(D(2000, 5, 1), D(2000, 5, 31)), 50, 1},
  };
  auto rising = RisingIntervals(hist);
  ASSERT_EQ(rising.size(), 2u);
  EXPECT_EQ(rising[0], IV(D(2000, 1, 1), D(2000, 3, 31)));
  EXPECT_EQ(rising[1], IV(D(2000, 4, 1), D(2000, 5, 31)));
}

TEST(AggregateTest, MovingWindowSmoothes) {
  std::vector<AggregateStep> hist = {
      {IV(D(2000, 1, 1), D(2000, 1, 10)), 0, 1},   // 10 days at 0
      {IV(D(2000, 1, 11), D(2000, 1, 20)), 100, 1},  // 10 days at 100
  };
  auto smooth = MovingWindowAvg(hist, 20);
  ASSERT_EQ(smooth.size(), 2u);
  EXPECT_DOUBLE_EQ(smooth[0].value, 0);
  EXPECT_DOUBLE_EQ(smooth[1].value, 50);  // half zeros, half hundreds
}

TEST(NowTest, RtendRewritesSentinel) {
  auto e = xml::XmlNode::Element("salary");
  e->SetInterval(IV(D(1995, 6, 1), Date::Forever()));
  auto fixed = Rtend(e, D(2006, 1, 1));
  EXPECT_EQ(*fixed->Attr("tend"), "2006-01-01");
  EXPECT_EQ(*fixed->Attr("tstart"), "1995-06-01");
  // Original untouched (deep copy).
  EXPECT_EQ(*e->Attr("tend"), "9999-12-31");
}

TEST(NowTest, ExternalNowRewritesRecursively) {
  auto root = xml::XmlNode::Element("employee");
  root->SetInterval(IV(D(1995, 1, 1), Date::Forever()));
  auto child = xml::XmlNode::Element("salary");
  child->SetInterval(IV(D(1995, 6, 1), Date::Forever()));
  root->AppendChild(child);
  auto fixed = ExternalNow(root);
  EXPECT_EQ(*fixed->Attr("tend"), "now");
  EXPECT_EQ(*fixed->ChildElements()[0]->Attr("tend"), "now");
}

TEST(NowTest, EffectiveEnd) {
  EXPECT_EQ(EffectiveEnd(IV(D(1995, 1, 1), Date::Forever()), D(2000, 1, 1)),
            D(2000, 1, 1));
  EXPECT_EQ(EffectiveEnd(IV(D(1995, 1, 1), D(1996, 1, 1)), D(2000, 1, 1)),
            D(1996, 1, 1));
}

}  // namespace
}  // namespace archis::temporal
