// Unit tests for the SQL/XML plan executor: hand-built plans over known
// H-table contents — pushdowns, join groups, cross conditions, output
// construction and the scalar/temporal aggregates.
#include <gtest/gtest.h>

#include "archis/archis.h"

namespace archis::core {
namespace {

using minirel::CompareOp;
using minirel::DataType;
using minirel::Schema;
using minirel::Tuple;
using minirel::Value;

Date D(int y, int m, int d) { return Date::FromYmd(y, m, d); }

/// Two employees with salary and title histories, plus one dept relation.
class SqlXmlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ArchISOptions opts;
    opts.segment.umin = 0.4;
    db_ = std::make_unique<ArchIS>(opts, D(2000, 1, 1));
    RelationSpec emp;
    emp.name = "emp";
    emp.schema = Schema({{"id", DataType::kInt64},
                         {"salary", DataType::kInt64},
                         {"title", DataType::kString}});
    emp.key_columns = {"id"};
    emp.doc_name = "emps.xml";
    emp.root_tag = "emps";
    ASSERT_TRUE(db_->CreateRelation(emp).ok());
    RelationSpec dept;
    dept.name = "dept";
    dept.schema =
        Schema({{"dno", DataType::kInt64}, {"mgr", DataType::kInt64}});
    dept.key_columns = {"dno"};
    dept.doc_name = "depts.xml";
    dept.root_tag = "depts";
    ASSERT_TRUE(db_->CreateRelation(dept).ok());
    // id 1: salary 100 -> 200 (2001), title A throughout.
    // id 2: salary 500 throughout, title B -> C (2002).
    Ins("emp", {Value(int64_t{1}), Value(int64_t{100}), Value("A")});
    Ins("emp", {Value(int64_t{2}), Value(int64_t{500}), Value("B")});
    Ins("dept", {Value(int64_t{7}), Value(int64_t{1})});
    Clock(D(2001, 1, 1));
    Upd("emp", Value(int64_t{1}),
        {Value(int64_t{1}), Value(int64_t{200}), Value("A")});
    Clock(D(2002, 1, 1));
    Upd("emp", Value(int64_t{2}),
        {Value(int64_t{2}), Value(int64_t{500}), Value("C")});
    Clock(D(2003, 1, 1));
  }

  void Ins(const std::string& rel, Tuple t) {
    ASSERT_TRUE(db_->Insert(rel, t).ok());
  }
  void Upd(const std::string& rel, Value key, Tuple t) {
    ASSERT_TRUE(db_->Update(rel, {key}, t).ok());
  }
  void Clock(Date d) { ASSERT_TRUE(db_->AdvanceClock(d).ok()); }

  xml::XmlNodePtr Run(const SqlXmlPlan& plan, PlanStats* stats = nullptr) {
    auto r = db_->Execute(plan, stats);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : nullptr;
  }

  std::unique_ptr<ArchIS> db_;
};

TEST_F(SqlXmlTest, SingleVarValueConditionPushdown) {
  SqlXmlPlan plan;
  PlanVar v;
  v.relation = "emp";
  v.attribute = "salary";
  v.value_conds.push_back({CompareOp::kGe, Value(int64_t{200})});
  plan.vars.push_back(v);
  OutputSpec out;
  out.kind = OutputSpec::Kind::kElement;
  out.name = "salary";
  out.column = HColRef{0, HCol::kValue};
  plan.output = out;
  auto xml = Run(plan);
  // 200 (id 1) and 500 (id 2): two rows.
  EXPECT_EQ(xml->ChildrenNamed("salary").size(), 2u);
}

TEST_F(SqlXmlTest, SnapshotPushdownSelectsVersionAtPoint) {
  SqlXmlPlan plan;
  PlanVar v;
  v.relation = "emp";
  v.attribute = "salary";
  v.snapshot = D(2000, 6, 1);
  plan.vars.push_back(v);
  OutputSpec out;
  out.kind = OutputSpec::Kind::kElement;
  out.name = "s";
  out.column = HColRef{0, HCol::kValue};
  plan.output = out;
  auto xml = Run(plan);
  auto rows = xml->ChildrenNamed("s");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0]->StringValue(), "100");  // pre-raise version of id 1
  EXPECT_EQ(rows[1]->StringValue(), "500");
}

TEST_F(SqlXmlTest, IdEqUsesIndexAndRestrictsRows) {
  SqlXmlPlan plan;
  PlanVar v;
  v.relation = "emp";
  v.attribute = "salary";
  v.id_eq = 1;
  plan.vars.push_back(v);
  OutputSpec out;
  out.kind = OutputSpec::Kind::kElement;
  out.name = "s";
  out.attr_var = 0;
  out.column = HColRef{0, HCol::kValue};
  plan.output = out;
  PlanStats stats;
  auto xml = Run(plan, &stats);
  EXPECT_EQ(xml->ChildrenNamed("s").size(), 2u);  // both versions of id 1
  EXPECT_LE(stats.rows_scanned, 3u);              // not the whole table
}

TEST_F(SqlXmlTest, SameGroupVarsMergeJoinOnId) {
  SqlXmlPlan plan;
  PlanVar s, t;
  s.relation = "emp";
  s.attribute = "salary";
  t.relation = "emp";
  t.attribute = "title";
  plan.vars = {s, t};  // same join_group (0) -> id join
  OutputSpec out;
  out.kind = OutputSpec::Kind::kElement;
  out.name = "row";
  OutputSpec sc;
  sc.kind = OutputSpec::Kind::kColumn;
  sc.column = HColRef{0, HCol::kValue};
  OutputSpec tc;
  tc.kind = OutputSpec::Kind::kColumn;
  tc.column = HColRef{1, HCol::kValue};
  out.children = {sc, tc};
  plan.output = out;
  auto xml = Run(plan);
  // id1: 2 salaries x 1 title; id2: 1 salary x 2 titles = 4 rows.
  EXPECT_EQ(xml->ChildrenNamed("row").size(), 4u);
}

TEST_F(SqlXmlTest, CrossGroupVarsCrossProductWithCond) {
  SqlXmlPlan plan;
  PlanVar e, d;
  e.relation = "emp";
  e.attribute = "";  // key table
  e.join_group = 0;
  d.relation = "dept";
  d.attribute = "mgr";
  d.join_group = 1;
  plan.vars = {e, d};
  // emp.id == dept.mgr (employee 1 manages dept 7).
  CrossCond cond;
  cond.kind = CrossCond::Kind::kCompare;
  cond.lhs = {0, HCol::kId};
  cond.op = CompareOp::kEq;
  cond.rhs = {1, HCol::kValue};
  plan.cross_conds.push_back(cond);
  OutputSpec out;
  out.kind = OutputSpec::Kind::kElement;
  out.name = "mgr";
  out.column = HColRef{0, HCol::kId};
  plan.output = out;
  auto xml = Run(plan);
  auto rows = xml->ChildrenNamed("mgr");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0]->StringValue(), "1");
}

TEST_F(SqlXmlTest, TemporalCrossCondition) {
  // Salary versions overlapping title versions of the same id.
  SqlXmlPlan plan;
  PlanVar s, t;
  s.relation = "emp";
  s.attribute = "salary";
  t.relation = "emp";
  t.attribute = "title";
  plan.vars = {s, t};
  CrossCond cond;
  cond.kind = CrossCond::Kind::kOverlaps;
  cond.lhs = {0, HCol::kTstart};
  cond.rhs = {1, HCol::kTstart};
  plan.cross_conds.push_back(cond);
  plan.aggregate = PlanAggregate::kCount;
  auto xml = Run(plan);
  // id1: both salaries overlap title A (2); id2: salary overlaps B and C
  // (2) -> 4.
  EXPECT_EQ(xml->ChildElements()[0]->StringValue(), "4.0000");
}

TEST_F(SqlXmlTest, AggAvgCountMaxDistinct) {
  SqlXmlPlan plan;
  PlanVar v;
  v.relation = "emp";
  v.attribute = "salary";
  plan.vars.push_back(v);

  plan.aggregate = PlanAggregate::kCount;
  EXPECT_EQ(Run(plan)->ChildElements()[0]->StringValue(), "3.0000");
  plan.aggregate = PlanAggregate::kMaxValue;
  EXPECT_EQ(Run(plan)->ChildElements()[0]->StringValue(), "500.0000");
  plan.aggregate = PlanAggregate::kAvgValue;
  EXPECT_EQ(Run(plan)->ChildElements()[0]->StringValue(), "266.6667");
  plan.aggregate = PlanAggregate::kCountDistinctIds;
  EXPECT_EQ(Run(plan)->ChildElements()[0]->StringValue(), "2.0000");
}

TEST_F(SqlXmlTest, MaxIncreaseWindowed) {
  SqlXmlPlan plan;
  PlanVar v;
  v.relation = "emp";
  v.attribute = "salary";
  plan.vars.push_back(v);
  plan.aggregate = PlanAggregate::kMaxIncrease;
  plan.agg_window_days = 400;
  // id1 went 100 -> 200 within 366 days: increase 100.
  EXPECT_EQ(Run(plan)->ChildElements()[0]->StringValue(), "100.0000");
  // With a tiny window no pair qualifies.
  plan.agg_window_days = 10;
  EXPECT_EQ(Run(plan)->ChildElements()[0]->StringValue(), "0.0000");
}

TEST_F(SqlXmlTest, TAvgEmitsStepHistory) {
  SqlXmlPlan plan;
  PlanVar v;
  v.relation = "emp";
  v.attribute = "salary";
  plan.vars.push_back(v);
  plan.aggregate = PlanAggregate::kTAvg;
  auto xml = Run(plan);
  auto steps = xml->ChildrenNamed("tavg");
  ASSERT_EQ(steps.size(), 2u);  // (100+500)/2=300, then (200+500)/2=350
  EXPECT_EQ(steps[0]->StringValue(), "300.00");
  EXPECT_EQ(steps[1]->StringValue(), "350.00");
  EXPECT_TRUE(steps[1]->Interval()->is_current());
}

TEST_F(SqlXmlTest, GroupedXmlAggOutput) {
  SqlXmlPlan plan;
  PlanVar v;
  v.relation = "emp";
  v.attribute = "salary";
  plan.vars.push_back(v);
  OutputSpec item;
  item.kind = OutputSpec::Kind::kElement;
  item.name = "salary";
  item.attr_var = 0;
  item.column = HColRef{0, HCol::kValue};
  OutputSpec agg;
  agg.kind = OutputSpec::Kind::kAgg;
  agg.children.push_back(item);
  OutputSpec root;
  root.kind = OutputSpec::Kind::kElement;
  root.name = "employee_salaries";
  root.children.push_back(agg);
  plan.output = root;
  auto xml = Run(plan);
  // One group element per id.
  auto groups = xml->ChildrenNamed("employee_salaries");
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0]->ChildrenNamed("salary").size(), 2u);  // id 1
  EXPECT_EQ(groups[1]->ChildrenNamed("salary").size(), 1u);  // id 2
}

TEST_F(SqlXmlTest, IntervalOutputSpec) {
  SqlXmlPlan plan;
  PlanVar s, t;
  s.relation = "emp";
  s.attribute = "salary";
  t.relation = "emp";
  t.attribute = "title";
  plan.vars = {s, t};
  OutputSpec out;
  out.kind = OutputSpec::Kind::kInterval;
  out.ivl_lhs = 0;
  out.ivl_rhs = 1;
  plan.output = out;
  auto xml = Run(plan);
  // Non-overlapping pairs produce nothing; overlapping pairs produce
  // <interval> children. id2's salary overlaps both its titles.
  EXPECT_GE(xml->ChildrenNamed("interval").size(), 3u);
  for (const auto& iv : xml->ChildrenNamed("interval")) {
    EXPECT_TRUE(iv->Interval().ok());
  }
}

TEST_F(SqlXmlTest, EmptyPlanRejected) {
  SqlXmlPlan plan;
  EXPECT_EQ(db_->Execute(plan).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SqlXmlTest, UnknownRelationSurfaces) {
  SqlXmlPlan plan;
  PlanVar v;
  v.relation = "ghost";
  plan.vars.push_back(v);
  EXPECT_EQ(db_->Execute(plan).status().code(), StatusCode::kNotFound);
}

TEST_F(SqlXmlTest, ToSqlMentionsEverything) {
  SqlXmlPlan plan;
  PlanVar v;
  v.relation = "emp";
  v.attribute = "salary";
  v.xq_name = "$s";
  v.snapshot = D(2001, 6, 1);
  v.value_conds.push_back({CompareOp::kGt, Value(int64_t{100})});
  v.current_only = true;
  plan.vars.push_back(v);
  plan.aggregate = PlanAggregate::kAvgValue;
  std::string sql = plan.ToSql();
  EXPECT_NE(sql.find("emp_salary AS s"), std::string::npos);
  EXPECT_NE(sql.find("AVG("), std::string::npos);
  EXPECT_NE(sql.find("SEGMENT_OF"), std::string::npos);
  EXPECT_NE(sql.find("> '100'"), std::string::npos);
  EXPECT_NE(sql.find("9999-12-31"), std::string::npos);
}

}  // namespace
}  // namespace archis::core
