// Transactional write path and crash recovery, end to end.
//
// The matrix test is the PR's central correctness argument: a scripted
// workload runs against a WAL-backed instance with a crash injected at
// every record boundary and mid-record; a shadow instance receives only
// the units the primary reported durable. Reopening the crashed instance
// must reproduce the shadow's H-documents byte for byte — committed means
// recovered, uncommitted means absent.
#include <gtest/gtest.h>

#include <cstdio>
#include <functional>

#include "workload/scripted_dml.h"
#include "xml/serializer.h"

namespace archis::core {
namespace {

using minirel::DataType;
using minirel::Schema;
using minirel::Tuple;
using minirel::Value;
using workload::RunScriptedDml;
using workload::ScriptedDmlConfig;

Date D(int y, int m, int d) { return Date::FromYmd(y, m, d); }

std::string TempPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

RelationSpec EmpSpec() {
  RelationSpec spec;
  spec.name = "employees";
  spec.schema = Schema({{"id", DataType::kInt64},
                        {"name", DataType::kString},
                        {"salary", DataType::kInt64}});
  spec.key_columns = {"id"};
  spec.doc_name = "employees.xml";
  return spec;
}

Tuple Emp(int64_t id, const std::string& name, int64_t salary) {
  return Tuple{Value(id), Value(name), Value(salary)};
}

/// Comparison key for recovery equivalence (shared with recovery_fuzz).
std::string AllHistories(ArchIS* db) {
  return workload::SerializeAllHistories(db);
}

/// Every tstart attribute value in the tree.
std::vector<std::string> CollectTstarts(const xml::XmlNodePtr& node) {
  std::vector<std::string> out;
  std::function<void(const xml::XmlNodePtr&)> walk =
      [&](const xml::XmlNodePtr& n) {
        if (auto t = n->Attr("tstart")) out.push_back(*t);
        for (const auto& child : n->ChildElements()) walk(child);
      };
  walk(node);
  return out;
}

TEST(TransactionTest, ExplicitBatchCommitsAtOneInstant) {
  ArchIS db(ArchISOptions{}, D(1995, 1, 1));
  ASSERT_TRUE(db.CreateRelation(EmpSpec()).ok());
  ASSERT_TRUE(db.AdvanceClock(D(1995, 4, 2)).ok());
  Transaction txn = db.Begin();
  ASSERT_TRUE(txn.Insert("employees", Emp(1, "Ann", 100)).ok());
  ASSERT_TRUE(txn.Insert("employees", Emp(2, "Bob", 200)).ok());
  ASSERT_TRUE(txn.Update("employees", {Value(int64_t{1})},
                         Emp(1, "Ann", 150)).ok());
  EXPECT_EQ(txn.pending(), 3u);
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_FALSE(txn.active());

  auto doc = db.PublishHistory("employees");
  ASSERT_TRUE(doc.ok());
  // Every version interval under the root (whose own tstart is the
  // relation-open date) starts at the commit instant.
  size_t versions = 0;
  for (const auto& entity : (*doc)->ChildElements()) {
    for (const std::string& t : CollectTstarts(entity)) {
      EXPECT_EQ(t, D(1995, 4, 2).ToString());
      ++versions;
    }
  }
  EXPECT_GE(versions, 3u);
}

TEST(TransactionTest, AdvanceClockIsBlockedWhileATxnIsOpen) {
  ArchIS db(ArchISOptions{}, D(1995, 1, 1));
  ASSERT_TRUE(db.CreateRelation(EmpSpec()).ok());
  {
    Transaction txn = db.Begin();
    ASSERT_TRUE(txn.Insert("employees", Emp(1, "Ann", 100)).ok());
    EXPECT_EQ(db.AdvanceClock(D(1995, 2, 1)).code(),
              StatusCode::kInvalidArgument);
    ASSERT_TRUE(txn.Commit().ok());
  }
  EXPECT_TRUE(db.AdvanceClock(D(1995, 2, 1)).ok());
}

TEST(TransactionTest, AbortRollsBackCurrentStateAndArchivesNothing) {
  ArchIS db(ArchISOptions{}, D(1995, 1, 1));
  ASSERT_TRUE(db.CreateRelation(EmpSpec()).ok());
  ASSERT_TRUE(db.Insert("employees", Emp(1, "Ann", 100)).ok());
  ASSERT_TRUE(db.AdvanceClock(D(1995, 2, 1)).ok());
  auto doc_before = db.PublishHistory("employees");
  ASSERT_TRUE(doc_before.ok());

  Transaction txn = db.Begin();
  ASSERT_TRUE(txn.Insert("employees", Emp(2, "Bob", 200)).ok());
  ASSERT_TRUE(txn.Update("employees", {Value(int64_t{1})},
                         Emp(1, "Ann", 999)).ok());
  ASSERT_TRUE(txn.Delete("employees", {Value(int64_t{1})}).ok());
  ASSERT_TRUE(txn.Abort().ok());

  // Current table is back to exactly one row, the original Ann.
  auto table = db.current_db().catalog().GetTable("employees");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->RowCount(), 1u);
  auto doc_after = db.PublishHistory("employees");
  ASSERT_TRUE(doc_after.ok());
  EXPECT_EQ(xml::Serialize(*doc_before), xml::Serialize(*doc_after));
}

TEST(TransactionTest, DestructorAbortsAnUncommittedBatch) {
  ArchIS db(ArchISOptions{}, D(1995, 1, 1));
  ASSERT_TRUE(db.CreateRelation(EmpSpec()).ok());
  {
    Transaction txn = db.Begin();
    ASSERT_TRUE(txn.Insert("employees", Emp(1, "Ann", 100)).ok());
  }
  auto table = db.current_db().catalog().GetTable("employees");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->RowCount(), 0u);
  // The clock is usable again (the open-txn count was released).
  EXPECT_TRUE(db.AdvanceClock(D(1995, 2, 1)).ok());
}

TEST(TransactionTest, FinishedHandleRejectsFurtherUse) {
  ArchIS db(ArchISOptions{}, D(1995, 1, 1));
  ASSERT_TRUE(db.CreateRelation(EmpSpec()).ok());
  Transaction txn = db.Begin();
  ASSERT_TRUE(txn.Insert("employees", Emp(1, "Ann", 100)).ok());
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(txn.Insert("employees", Emp(2, "Bob", 200)).code(),
            StatusCode::kAborted);
  EXPECT_EQ(txn.Commit().code(), StatusCode::kAborted);
  EXPECT_EQ(txn.Abort().code(), StatusCode::kAborted);
}

TEST(TransactionTest, AmbientUpdateLogBatchBuffersUntilCommit) {
  ArchISOptions opts;
  opts.capture_mode = CaptureMode::kUpdateLog;
  ArchIS db(opts, D(1995, 1, 1));
  ASSERT_TRUE(db.CreateRelation(EmpSpec()).ok());
  ASSERT_TRUE(db.Insert("employees", Emp(1, "Ann", 100)).ok());
  // The ambient batch may span clock advances, keeping per-statement dates.
  ASSERT_TRUE(db.AdvanceClock(D(1995, 6, 1)).ok());
  ASSERT_TRUE(db.Update("employees", {Value(int64_t{1})},
                        Emp(1, "Ann", 150)).ok());
  EXPECT_EQ(db.pending_changes(), 2u);
  // Nothing archived yet.
  auto early = db.Snapshot("employees", D(1995, 3, 1));
  ASSERT_TRUE(early.ok());
  EXPECT_TRUE(early->empty());

  ASSERT_TRUE(db.Commit().ok());
  EXPECT_EQ(db.pending_changes(), 0u);
  // Per-statement dates survived: the insert archived at Jan 1.
  auto snap = db.Snapshot("employees", D(1995, 3, 1));
  ASSERT_TRUE(snap.ok());
  ASSERT_EQ(snap->size(), 1u);
  EXPECT_EQ((*snap)[0], Emp(1, "Ann", 100));
}

TEST(TransactionTest, DeprecatedShimsStillWork) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  ArchISOptions opts;
  opts.capture_mode = CaptureMode::kUpdateLog;
  ArchIS db(opts, D(1995, 1, 1));
  Schema schema({{"id", DataType::kInt64}, {"name", DataType::kString}});
  // archis-lint: allow(deprecated-api) -- this test exercises the shims
  ASSERT_TRUE(db.CreateRelation("emp", schema, {"id"},
                                DocBinding{"emp", "emps", "emp"}, "emps.xml")
                  .ok());
  ASSERT_TRUE(db.Insert("emp", Tuple{Value(int64_t{1}), Value("A")}).ok());
  // archis-lint: allow(deprecated-api) -- this test exercises the shims
  ASSERT_TRUE(db.FlushLog().ok());
#pragma GCC diagnostic pop
  auto snap = db.Snapshot("emp", D(1995, 1, 1));
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->size(), 1u);
}

TEST(RecoveryTest, WalConfiguredConstructorRequiresOpen) {
  ArchISOptions opts;
  opts.wal.path = TempPath("ctor_guard.wal");
  ArchIS db(opts, D(1995, 1, 1));
  EXPECT_EQ(db.CreateRelation(EmpSpec()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.Insert("employees", Emp(1, "Ann", 100)).code(),
            StatusCode::kInvalidArgument);
}

TEST(RecoveryTest, CleanShutdownReopensWithIdenticalHistoryAndClock) {
  const std::string path = TempPath("clean_reopen.wal");
  ArchISOptions opts;
  opts.wal.path = path;
  std::string before;
  {
    auto db = ArchIS::Open(opts, D(1995, 1, 1));
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateRelation(EmpSpec()).ok());
    ASSERT_TRUE((*db)->Insert("employees", Emp(1, "Ann", 100)).ok());
    ASSERT_TRUE((*db)->AdvanceClock(D(1996, 3, 4)).ok());
    Transaction txn = (*db)->Begin();
    ASSERT_TRUE(txn.Insert("employees", Emp(2, "Bob", 200)).ok());
    ASSERT_TRUE(txn.Update("employees", {Value(int64_t{1})},
                           Emp(1, "Ann", 160)).ok());
    ASSERT_TRUE(txn.Commit().ok());
    before = AllHistories(db->get());
  }
  auto db = ArchIS::Open(opts, D(1995, 1, 1));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(AllHistories(db->get()), before);
  // The clock resumed at the last committed instant.
  EXPECT_EQ((*db)->Now(), D(1996, 3, 4));
  // The recovered txn's versions share one tstart.
  auto doc = (*db)->PublishHistory("employees");
  ASSERT_TRUE(doc.ok());
  int at_commit_instant = 0;
  for (const std::string& t : CollectTstarts(*doc)) {
    if (t == D(1996, 3, 4).ToString()) ++at_commit_instant;
  }
  EXPECT_GE(at_commit_instant, 2);  // Bob's insert + Ann's raise
  // And the instance accepts new durable work.
  ASSERT_TRUE((*db)->Insert("employees", Emp(3, "Cay", 300)).ok());
}

TEST(RecoveryTest, ReplayIsIdempotent) {
  const std::string path = TempPath("idempotent.wal");
  ArchISOptions opts;
  opts.wal.path = path;
  {
    auto db = ArchIS::Open(opts, D(1995, 1, 1));
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateRelation(EmpSpec()).ok());
    Transaction txn = (*db)->Begin();
    ASSERT_TRUE(txn.Insert("employees", Emp(1, "Ann", 100)).ok());
    ASSERT_TRUE(txn.Insert("employees", Emp(2, "Bob", 200)).ok());
    ASSERT_TRUE(txn.Commit().ok());
    ASSERT_TRUE((*db)->AdvanceClock(D(1995, 5, 1)).ok());
    ASSERT_TRUE((*db)->Delete("employees", {Value(int64_t{2})}).ok());
  }
  auto db = ArchIS::Open(opts, D(1995, 1, 1));
  ASSERT_TRUE(db.ok());
  const std::string once = AllHistories(db->get());
  // Feed every committed txn through the recovery entry point a second
  // time: every change must be recognized as already applied.
  auto rec = Wal::Recover(path);
  ASSERT_TRUE(rec.ok());
  for (const auto& item : rec->items) {
    if (const auto* txn = std::get_if<WalCommittedTxn>(&item)) {
      ASSERT_TRUE((*db)->ApplyRecovered(*txn).ok());
    }
  }
  EXPECT_EQ(AllHistories(db->get()), once);
}

// The crash matrix. A clean scripted run determines the WAL layout; then
// the same script is re-run with a crash injected at every record
// boundary and mid-record, and recovery must agree with the shadow.
TEST(RecoveryTest, CrashAtEveryRecordBoundaryRecoversCommittedPrefix) {
  ScriptedDmlConfig cfg;
  cfg.seed = 7;
  cfg.transactions = 12;
  cfg.max_batch = 3;

  // Clean run: learn the record layout.
  const std::string layout_path = TempPath("matrix_layout.wal");
  {
    ArchISOptions opts;
    opts.wal.path = layout_path;
    auto db = ArchIS::Open(opts, cfg.start_date);
    ASSERT_TRUE(db.ok());
    auto run = RunScriptedDml(db->get(), nullptr, cfg);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    ASSERT_FALSE(run->crashed);
  }
  auto layout = storage::ScanLogFile(layout_path);
  ASSERT_TRUE(layout.ok());
  ASSERT_FALSE(layout->torn_tail);
  ASSERT_GT(layout->records.size(), 20u);

  // Crash points: each record's start (clean boundary), mid-header, and
  // mid-payload.
  std::vector<uint64_t> points;
  for (const storage::LogRecord& r : layout->records) {
    // fail_after_bytes = 0 means "never fail", so the boundary before the
    // first record is exercised by its mid-header point instead.
    if (r.offset > 0) points.push_back(r.offset);
    points.push_back(r.offset + 4);
    points.push_back(r.offset + 8 + r.payload.size() / 2);
  }

  int nonempty_recoveries = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    SCOPED_TRACE("crash point " + std::to_string(points[i]));
    const std::string path =
        TempPath("matrix_" + std::to_string(i) + ".wal");
    ArchISOptions opts;
    opts.wal.path = path;
    opts.wal.fail_after_bytes = points[i];
    auto db = ArchIS::Open(opts, cfg.start_date);
    ASSERT_TRUE(db.ok());
    ArchIS shadow(ArchISOptions{}, cfg.start_date);
    auto run = RunScriptedDml(db->get(), &shadow, cfg);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_TRUE(run->crashed);
    db->reset();  // "power loss"

    ArchISOptions reopen;
    reopen.wal.path = path;
    auto recovered = ArchIS::Open(reopen, cfg.start_date);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_EQ(AllHistories(recovered->get()), AllHistories(&shadow));
    if (run->committed_units > 1) ++nonempty_recoveries;
  }
  // The matrix exercised real recoveries, not just empty logs.
  EXPECT_GT(nonempty_recoveries, 0);
}

}  // namespace
}  // namespace archis::core
