// Transactional write path and crash recovery, end to end.
//
// The matrix test is the PR's central correctness argument: a scripted
// workload runs against a WAL-backed instance with a crash injected at
// every record boundary and mid-record; a shadow instance receives only
// the units the primary reported durable. Reopening the crashed instance
// must reproduce the shadow's H-documents byte for byte — committed means
// recovered, uncommitted means absent.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <thread>

#include "archis/checkpoint.h"
#include "common/metrics.h"
#include "workload/scripted_dml.h"
#include "xml/serializer.h"

namespace archis::core {
namespace {

using minirel::DataType;
using minirel::Schema;
using minirel::Tuple;
using minirel::Value;
using workload::RunScriptedDml;
using workload::ScriptedDmlConfig;

Date D(int y, int m, int d) { return Date::FromYmd(y, m, d); }

std::string TempPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  // Checkpoint artifacts outlive the WAL file; a stale manifest from a
  // previous test-binary run must not leak into this one's recovery.
  std::remove(CheckpointPath(path).c_str());
  std::remove(CheckpointPrevPath(path).c_str());
  std::remove(CheckpointTmpPath(path).c_str());
  return path;
}

RelationSpec EmpSpec() {
  RelationSpec spec;
  spec.name = "employees";
  spec.schema = Schema({{"id", DataType::kInt64},
                        {"name", DataType::kString},
                        {"salary", DataType::kInt64}});
  spec.key_columns = {"id"};
  spec.doc_name = "employees.xml";
  return spec;
}

Tuple Emp(int64_t id, const std::string& name, int64_t salary) {
  return Tuple{Value(id), Value(name), Value(salary)};
}

/// Unwraps ArchIS::Begin into a named Transaction, failing the test on a
/// refused admission.
#define BEGIN_TXN(var, db)                                    \
  auto var##_result = (db)->Begin();                          \
  ASSERT_TRUE(var##_result.ok())                              \
      << var##_result.status().ToString();                    \
  Transaction var = std::move(*var##_result)

/// Comparison key for recovery equivalence (shared with recovery_fuzz).
std::string AllHistories(ArchIS* db) {
  return workload::SerializeAllHistories(db);
}

/// Every tstart attribute value in the tree.
std::vector<std::string> CollectTstarts(const xml::XmlNodePtr& node) {
  std::vector<std::string> out;
  std::function<void(const xml::XmlNodePtr&)> walk =
      [&](const xml::XmlNodePtr& n) {
        if (auto t = n->Attr("tstart")) out.push_back(*t);
        for (const auto& child : n->ChildElements()) walk(child);
      };
  walk(node);
  return out;
}

TEST(TransactionTest, ExplicitBatchCommitsAtOneInstant) {
  ArchIS db(ArchISOptions{}, D(1995, 1, 1));
  ASSERT_TRUE(db.CreateRelation(EmpSpec()).ok());
  ASSERT_TRUE(db.AdvanceClock(D(1995, 4, 2)).ok());
  BEGIN_TXN(txn, &db);
  ASSERT_TRUE(txn.Insert("employees", Emp(1, "Ann", 100)).ok());
  ASSERT_TRUE(txn.Insert("employees", Emp(2, "Bob", 200)).ok());
  ASSERT_TRUE(txn.Update("employees", {Value(int64_t{1})},
                         Emp(1, "Ann", 150)).ok());
  EXPECT_EQ(txn.pending(), 3u);
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_FALSE(txn.active());

  auto doc = db.PublishHistory("employees");
  ASSERT_TRUE(doc.ok());
  // Every version interval under the root (whose own tstart is the
  // relation-open date) starts at the commit instant.
  size_t versions = 0;
  for (const auto& entity : (*doc)->ChildElements()) {
    for (const std::string& t : CollectTstarts(entity)) {
      EXPECT_EQ(t, D(1995, 4, 2).ToString());
      ++versions;
    }
  }
  EXPECT_GE(versions, 3u);
}

TEST(TransactionTest, AdvanceClockPermittedWhileATxnIsOpen) {
  // Open transactions no longer pin the clock: their changes are stamped
  // at the clock value of the commit instant, so a clock advance between
  // Begin and Commit simply moves the batch's timestamp forward.
  ArchIS db(ArchISOptions{}, D(1995, 1, 1));
  ASSERT_TRUE(db.CreateRelation(EmpSpec()).ok());
  {
    BEGIN_TXN(txn, &db);
    ASSERT_TRUE(txn.Insert("employees", Emp(1, "Ann", 100)).ok());
    EXPECT_TRUE(db.AdvanceClock(D(1995, 2, 1)).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  // The batch committed at the advanced clock, not at Begin's.
  auto snap_before = db.Snapshot("employees", D(1995, 1, 15));
  ASSERT_TRUE(snap_before.ok());
  EXPECT_TRUE(snap_before->empty());
  auto snap_after = db.Snapshot("employees", D(1995, 2, 1));
  ASSERT_TRUE(snap_after.ok());
  EXPECT_EQ(snap_after->size(), 1u);
  // Backwards moves are still rejected.
  EXPECT_EQ(db.AdvanceClock(D(1995, 1, 15)).code(),
            StatusCode::kInvalidArgument);
}

TEST(TransactionTest, AbortDiscardsTheBatchWithoutApplyingAnything) {
  // Deferred apply: buffered DML never touches the current tables or the
  // H-tables, so Abort is a pure discard — no undo pass.
  ArchIS db(ArchISOptions{}, D(1995, 1, 1));
  ASSERT_TRUE(db.CreateRelation(EmpSpec()).ok());
  ASSERT_TRUE(db.Insert("employees", Emp(1, "Ann", 100)).ok());
  ASSERT_TRUE(db.AdvanceClock(D(1995, 2, 1)).ok());
  auto doc_before = db.PublishHistory("employees");
  ASSERT_TRUE(doc_before.ok());

  BEGIN_TXN(txn, &db);
  ASSERT_TRUE(txn.Insert("employees", Emp(2, "Bob", 200)).ok());
  ASSERT_TRUE(txn.Update("employees", {Value(int64_t{1})},
                         Emp(1, "Ann", 999)).ok());
  ASSERT_TRUE(txn.Delete("employees", {Value(int64_t{1})}).ok());
  ASSERT_TRUE(txn.Abort().ok());

  // Current table is back to exactly one row, the original Ann.
  auto table = db.current_db().catalog().GetTable("employees");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->RowCount(), 1u);
  auto doc_after = db.PublishHistory("employees");
  ASSERT_TRUE(doc_after.ok());
  EXPECT_EQ(xml::Serialize(*doc_before), xml::Serialize(*doc_after));
}

TEST(TransactionTest, DestructorAbortsAnUncommittedBatch) {
  ArchIS db(ArchISOptions{}, D(1995, 1, 1));
  ASSERT_TRUE(db.CreateRelation(EmpSpec()).ok());
  {
    BEGIN_TXN(txn, &db);
    ASSERT_TRUE(txn.Insert("employees", Emp(1, "Ann", 100)).ok());
  }
  auto table = db.current_db().catalog().GetTable("employees");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->RowCount(), 0u);
  // The destructor released the admission slot.
  EXPECT_TRUE(db.AdvanceClock(D(1995, 2, 1)).ok());
}

TEST(TransactionTest, FinishedHandleRejectsFurtherUse) {
  ArchIS db(ArchISOptions{}, D(1995, 1, 1));
  ASSERT_TRUE(db.CreateRelation(EmpSpec()).ok());
  BEGIN_TXN(txn, &db);
  ASSERT_TRUE(txn.Insert("employees", Emp(1, "Ann", 100)).ok());
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(txn.Insert("employees", Emp(2, "Bob", 200)).code(),
            StatusCode::kAborted);
  EXPECT_EQ(txn.Commit().code(), StatusCode::kAborted);
  EXPECT_EQ(txn.Abort().code(), StatusCode::kAborted);
}

TEST(TransactionTest, AmbientUpdateLogBatchBuffersUntilCommit) {
  ArchISOptions opts;
  opts.capture_mode = CaptureMode::kUpdateLog;
  ArchIS db(opts, D(1995, 1, 1));
  ASSERT_TRUE(db.CreateRelation(EmpSpec()).ok());
  ASSERT_TRUE(db.Insert("employees", Emp(1, "Ann", 100)).ok());
  // The ambient batch may span clock advances, keeping per-statement dates.
  ASSERT_TRUE(db.AdvanceClock(D(1995, 6, 1)).ok());
  ASSERT_TRUE(db.Update("employees", {Value(int64_t{1})},
                        Emp(1, "Ann", 150)).ok());
  EXPECT_EQ(db.pending_changes(), 2u);
  // Nothing archived yet.
  auto early = db.Snapshot("employees", D(1995, 3, 1));
  ASSERT_TRUE(early.ok());
  EXPECT_TRUE(early->empty());

  ASSERT_TRUE(db.Commit().ok());
  EXPECT_EQ(db.pending_changes(), 0u);
  // Per-statement dates survived: the insert archived at Jan 1.
  auto snap = db.Snapshot("employees", D(1995, 3, 1));
  ASSERT_TRUE(snap.ok());
  ASSERT_EQ(snap->size(), 1u);
  EXPECT_EQ((*snap)[0], Emp(1, "Ann", 100));
}

TEST(TransactionTest, ReadYourOwnWritesThroughTheOverlay) {
  // A transaction sees its own buffered writes: inserting a key twice in
  // one batch is AlreadyExists, updating a buffered insert works, and a
  // buffered delete makes the key invisible to later statements.
  ArchIS db(ArchISOptions{}, D(1995, 1, 1));
  ASSERT_TRUE(db.CreateRelation(EmpSpec()).ok());
  BEGIN_TXN(txn, &db);
  ASSERT_TRUE(txn.Insert("employees", Emp(1, "Ann", 100)).ok());
  EXPECT_EQ(txn.Insert("employees", Emp(1, "Ann", 100)).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(txn.Update("employees", {Value(int64_t{1})},
                         Emp(1, "Ann", 150)).ok());
  ASSERT_TRUE(txn.Delete("employees", {Value(int64_t{1})}).ok());
  EXPECT_EQ(txn.Update("employees", {Value(int64_t{1})},
                       Emp(1, "Ann", 200)).code(),
            StatusCode::kNotFound);
  // Re-inserting a key the batch deleted is allowed again.
  ASSERT_TRUE(txn.Insert("employees", Emp(1, "Ann", 300)).ok());
  ASSERT_TRUE(txn.Commit().ok());
  auto snap = db.Snapshot("employees", D(1995, 1, 1));
  ASSERT_TRUE(snap.ok());
  ASSERT_EQ(snap->size(), 1u);
  EXPECT_EQ((*snap)[0], Emp(1, "Ann", 300));
}

TEST(TransactionTest, FirstCommitterWinsOnOverlappingWriteSets) {
  ArchIS db(ArchISOptions{}, D(1995, 1, 1));
  ASSERT_TRUE(db.CreateRelation(EmpSpec()).ok());
  ASSERT_TRUE(db.Insert("employees", Emp(1, "Ann", 100)).ok());
  ASSERT_TRUE(db.Insert("employees", Emp(2, "Bob", 200)).ok());

  // Overlap on key 1: the second committer loses.
  {
    BEGIN_TXN(a, &db);
    BEGIN_TXN(b, &db);
    ASSERT_TRUE(a.Update("employees", {Value(int64_t{1})},
                         Emp(1, "Ann", 111)).ok());
    ASSERT_TRUE(b.Update("employees", {Value(int64_t{1})},
                         Emp(1, "Ann", 122)).ok());
    ASSERT_TRUE(a.Commit().ok());
    Status st = b.Commit();
    EXPECT_EQ(st.code(), StatusCode::kConflict) << st.ToString();
    // The conflict message names the contested key.
    EXPECT_NE(st.message().find("employees(1)"), std::string::npos)
        << st.ToString();
  }
  auto snap = db.Snapshot("employees", D(1995, 1, 1));
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ((*snap)[0], Emp(1, "Ann", 111));  // the loser applied nothing

  // Disjoint write sets: both committers win, and the clock may advance
  // between their commits while both are still open.
  {
    BEGIN_TXN(a, &db);
    BEGIN_TXN(b, &db);
    ASSERT_TRUE(a.Update("employees", {Value(int64_t{1})},
                         Emp(1, "Ann", 131)).ok());
    ASSERT_TRUE(b.Update("employees", {Value(int64_t{2})},
                         Emp(2, "Bob", 232)).ok());
    ASSERT_TRUE(a.Commit().ok());
    ASSERT_TRUE(db.AdvanceClock(D(1995, 2, 1)).ok());
    ASSERT_TRUE(b.Commit().ok());
    // b committed at the advanced clock instant.
    auto early = db.Snapshot("employees", D(1995, 1, 15));
    ASSERT_TRUE(early.ok());
    for (const Tuple& row : *early) {
      if (row.at(0) == Value(int64_t{2})) {
        EXPECT_EQ(row, Emp(2, "Bob", 200));
      }
    }
    auto late = db.Snapshot("employees", D(1995, 2, 1));
    ASSERT_TRUE(late.ok());
    for (const Tuple& row : *late) {
      if (row.at(0) == Value(int64_t{2})) {
        EXPECT_EQ(row, Emp(2, "Bob", 232));
      }
    }
  }

  // Delete/update overlap conflicts the same way as update/update.
  {
    BEGIN_TXN(a, &db);
    BEGIN_TXN(b, &db);
    ASSERT_TRUE(a.Delete("employees", {Value(int64_t{2})}).ok());
    ASSERT_TRUE(b.Update("employees", {Value(int64_t{2})},
                         Emp(2, "Bob", 999)).ok());
    ASSERT_TRUE(a.Commit().ok());
    EXPECT_EQ(b.Commit().code(), StatusCode::kConflict);
  }

  // A transaction begun after the winner committed does not conflict.
  {
    BEGIN_TXN(c, &db);
    ASSERT_TRUE(c.Update("employees", {Value(int64_t{1})},
                         Emp(1, "Ann", 141)).ok());
    ASSERT_TRUE(c.Commit().ok());
  }
}

TEST(TransactionTest, AdmissionLimitBoundsOpenTransactions) {
  ArchISOptions opts;
  opts.max_open_transactions = 2;
  ArchIS db(opts, D(1995, 1, 1));
  ASSERT_TRUE(db.CreateRelation(EmpSpec()).ok());
  BEGIN_TXN(a, &db);
  BEGIN_TXN(b, &db);
  auto c = db.Begin();
  EXPECT_EQ(c.status().code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(a.Abort().ok());
  auto d = db.Begin();
  EXPECT_TRUE(d.ok());  // the slot was released
  ASSERT_TRUE(b.Abort().ok());
}

TEST(TransactionTest, HandlesAreThreadAffineButMovable) {
  ArchIS db(ArchISOptions{}, D(1995, 1, 1));
  ASSERT_TRUE(db.CreateRelation(EmpSpec()).ok());
  // The first thread to use a handle claims it; after that, using it from
  // a foreign thread without moving it is rejected.
  {
    BEGIN_TXN(txn, &db);
    ASSERT_TRUE(txn.Insert("employees", Emp(1, "Ann", 100)).ok());
    Status cross;
    std::thread worker([&] {
      cross = txn.Insert("employees", Emp(99, "Eve", 999));
    });
    worker.join();
    EXPECT_EQ(cross.code(), StatusCode::kInvalidArgument);
    ASSERT_TRUE(txn.Commit().ok());
  }
  // Moving the handle transfers ownership to the receiving thread.
  {
    BEGIN_TXN(txn, &db);
    ASSERT_TRUE(txn.Insert("employees", Emp(2, "Bob", 200)).ok());
    Status moved_insert, moved_commit;
    std::thread worker([t = std::move(txn), &moved_insert,
                        &moved_commit]() mutable {
      moved_insert = t.Insert("employees", Emp(3, "Cay", 300));
      moved_commit = t.Commit();
    });
    worker.join();
    EXPECT_TRUE(moved_insert.ok()) << moved_insert.ToString();
    EXPECT_TRUE(moved_commit.ok()) << moved_commit.ToString();
  }
  auto snap = db.Snapshot("employees", D(1995, 1, 1));
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->size(), 3u);
}

TEST(TransactionTest, ConcurrentDisjointWritersAllCommit) {
  // The tentpole scenario: writer threads with disjoint write sets hold
  // open transactions simultaneously while the clock advances between
  // their commits; every batch commits, none conflicts.
  constexpr int kWriters = 4;
  constexpr int kTxnsPerWriter = 8;
  ArchIS db(ArchISOptions{}, D(1995, 1, 1));
  ASSERT_TRUE(db.CreateRelation(EmpSpec()).ok());
  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&db, &failures, w] {
      for (int i = 0; i < kTxnsPerWriter; ++i) {
        const int64_t id = w * 1000 + i;
        auto begun = db.Begin();
        if (!begun.ok()) { ++failures; return; }
        Transaction txn = std::move(*begun);
        if (!txn.Insert("employees", Emp(id, "w" + std::to_string(w), id))
                 .ok() ||
            !txn.Commit().ok()) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(failures.load(), 0);
  auto snap = db.Snapshot("employees", db.Now());
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->size(), size_t{kWriters} * kTxnsPerWriter);
}

TEST(RecoveryTest, WalConfiguredConstructorRequiresOpen) {
  ArchISOptions opts;
  opts.wal.path = TempPath("ctor_guard.wal");
  ArchIS db(opts, D(1995, 1, 1));
  EXPECT_EQ(db.CreateRelation(EmpSpec()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.Insert("employees", Emp(1, "Ann", 100)).code(),
            StatusCode::kInvalidArgument);
}

TEST(RecoveryTest, CleanShutdownReopensWithIdenticalHistoryAndClock) {
  const std::string path = TempPath("clean_reopen.wal");
  ArchISOptions opts;
  opts.wal.path = path;
  std::string before;
  {
    auto db = ArchIS::Open(opts, D(1995, 1, 1));
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateRelation(EmpSpec()).ok());
    ASSERT_TRUE((*db)->Insert("employees", Emp(1, "Ann", 100)).ok());
    ASSERT_TRUE((*db)->AdvanceClock(D(1996, 3, 4)).ok());
    BEGIN_TXN(txn, db->get());
    ASSERT_TRUE(txn.Insert("employees", Emp(2, "Bob", 200)).ok());
    ASSERT_TRUE(txn.Update("employees", {Value(int64_t{1})},
                           Emp(1, "Ann", 160)).ok());
    ASSERT_TRUE(txn.Commit().ok());
    before = AllHistories(db->get());
  }
  auto db = ArchIS::Open(opts, D(1995, 1, 1));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(AllHistories(db->get()), before);
  // The clock resumed at the last committed instant.
  EXPECT_EQ((*db)->Now(), D(1996, 3, 4));
  // The recovered txn's versions share one tstart.
  auto doc = (*db)->PublishHistory("employees");
  ASSERT_TRUE(doc.ok());
  int at_commit_instant = 0;
  for (const std::string& t : CollectTstarts(*doc)) {
    if (t == D(1996, 3, 4).ToString()) ++at_commit_instant;
  }
  EXPECT_GE(at_commit_instant, 2);  // Bob's insert + Ann's raise
  // And the instance accepts new durable work.
  ASSERT_TRUE((*db)->Insert("employees", Emp(3, "Cay", 300)).ok());
}

TEST(RecoveryTest, ReplayIsIdempotent) {
  const std::string path = TempPath("idempotent.wal");
  ArchISOptions opts;
  opts.wal.path = path;
  {
    auto db = ArchIS::Open(opts, D(1995, 1, 1));
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateRelation(EmpSpec()).ok());
    BEGIN_TXN(txn, db->get());
    ASSERT_TRUE(txn.Insert("employees", Emp(1, "Ann", 100)).ok());
    ASSERT_TRUE(txn.Insert("employees", Emp(2, "Bob", 200)).ok());
    ASSERT_TRUE(txn.Commit().ok());
    ASSERT_TRUE((*db)->AdvanceClock(D(1995, 5, 1)).ok());
    ASSERT_TRUE((*db)->Delete("employees", {Value(int64_t{2})}).ok());
  }
  auto db = ArchIS::Open(opts, D(1995, 1, 1));
  ASSERT_TRUE(db.ok());
  const std::string once = AllHistories(db->get());
  // Feed every committed txn through the recovery entry point a second
  // time: every change must be recognized as already applied.
  auto rec = Wal::Recover(path);
  ASSERT_TRUE(rec.ok());
  for (const auto& item : rec->items) {
    if (const auto* txn = std::get_if<WalCommittedTxn>(&item)) {
      ASSERT_TRUE((*db)->ApplyRecovered(*txn).ok());
    }
  }
  EXPECT_EQ(AllHistories(db->get()), once);
}

// The crash matrix. A clean scripted run determines the WAL layout; then
// the same script is re-run with a crash injected at every record
// boundary and mid-record, and recovery must agree with the shadow.
TEST(RecoveryTest, CrashAtEveryRecordBoundaryRecoversCommittedPrefix) {
  ScriptedDmlConfig cfg;
  cfg.seed = 7;
  cfg.transactions = 12;
  cfg.max_batch = 3;

  // Clean run: learn the record layout.
  const std::string layout_path = TempPath("matrix_layout.wal");
  {
    ArchISOptions opts;
    opts.wal.path = layout_path;
    auto db = ArchIS::Open(opts, cfg.start_date);
    ASSERT_TRUE(db.ok());
    auto run = RunScriptedDml(db->get(), nullptr, cfg);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    ASSERT_FALSE(run->crashed);
  }
  auto layout = storage::ScanLogFile(layout_path);
  ASSERT_TRUE(layout.ok());
  ASSERT_FALSE(layout->torn_tail);
  ASSERT_GT(layout->records.size(), 20u);

  // Crash points: each record's start (clean boundary), mid-header, and
  // mid-payload.
  std::vector<uint64_t> points;
  for (const storage::LogRecord& r : layout->records) {
    // fail_after_bytes = 0 means "never fail", so the boundary before the
    // first record is exercised by its mid-header point instead.
    if (r.offset > 0) points.push_back(r.offset);
    points.push_back(r.offset + 4);
    points.push_back(r.offset + 8 + r.payload.size() / 2);
  }

  int nonempty_recoveries = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    SCOPED_TRACE("crash point " + std::to_string(points[i]));
    const std::string path =
        TempPath("matrix_" + std::to_string(i) + ".wal");
    ArchISOptions opts;
    opts.wal.path = path;
    opts.wal.fail_after_bytes = points[i];
    auto db = ArchIS::Open(opts, cfg.start_date);
    ASSERT_TRUE(db.ok());
    ArchIS shadow(ArchISOptions{}, cfg.start_date);
    auto run = RunScriptedDml(db->get(), &shadow, cfg);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_TRUE(run->crashed);
    db->reset();  // "power loss"

    ArchISOptions reopen;
    reopen.wal.path = path;
    auto recovered = ArchIS::Open(reopen, cfg.start_date);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_EQ(AllHistories(recovered->get()), AllHistories(&shadow));
    if (run->committed_units > 1) ++nonempty_recoveries;
  }
  // The matrix exercised real recoveries, not just empty logs.
  EXPECT_GT(nonempty_recoveries, 0);
}

// -- Checkpointing -------------------------------------------------------------

metrics::Counter* RecoveredBytesCounter() {
  return metrics::Registry::Global().GetCounter(
      "archis_wal_recovered_bytes",
      "WAL bytes replayed by recovery (suffix past the manifest only)");
}

metrics::Counter* FallbacksCounter() {
  return metrics::Registry::Global().GetCounter(
      "archis_checkpoint_manifest_fallbacks_total",
      "Recoveries that found the newest manifest torn and used the "
      "previous one");
}

TEST(CheckpointTest, RequiresWalButNotQuiesce) {
  // In-memory instances have no log to truncate.
  ArchIS mem(ArchISOptions{}, D(1995, 1, 1));
  EXPECT_EQ(mem.Checkpoint().code(), StatusCode::kInvalidArgument);

  // Fuzzy checkpoints run while transactions are open; the uncommitted
  // batch is simply not in the manifest and recovers from its COMMIT
  // record (or not at all).
  const std::string path = TempPath("ckpt_fuzzy.wal");
  ArchISOptions opts;
  opts.wal.path = path;
  std::string committed_state;
  {
    auto db = ArchIS::Open(opts, D(1995, 1, 1));
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateRelation(EmpSpec()).ok());
    ASSERT_TRUE((*db)->Insert("employees", Emp(1, "Ann", 100)).ok());
    {
      BEGIN_TXN(txn, db->get());
      ASSERT_TRUE(txn.Insert("employees", Emp(2, "Bob", 200)).ok());
      EXPECT_TRUE((*db)->Checkpoint().ok());  // no quiesce required
      EXPECT_EQ((*db)->checkpoint_seq(), 1u);
      ASSERT_TRUE(txn.Commit().ok());
    }
    EXPECT_TRUE((*db)->Checkpoint().ok());
    EXPECT_EQ((*db)->checkpoint_seq(), 2u);
    committed_state = AllHistories(db->get());
  }
  // Both the pre-checkpoint commit and the one that straddled the fuzzy
  // capture survive a reopen.
  auto db = ArchIS::Open(opts, D(1995, 1, 1));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(AllHistories(db->get()), committed_state);

  // Buffered ambient changes (kUpdateLog mode) don't block it either.
  ArchISOptions log_opts;
  log_opts.capture_mode = CaptureMode::kUpdateLog;
  log_opts.wal.path = TempPath("ckpt_fuzzy_ambient.wal");
  auto db2 = ArchIS::Open(log_opts, D(1995, 1, 1));
  ASSERT_TRUE(db2.ok());
  ASSERT_TRUE((*db2)->CreateRelation(EmpSpec()).ok());
  ASSERT_TRUE((*db2)->Insert("employees", Emp(1, "Ann", 100)).ok());
  EXPECT_TRUE((*db2)->Checkpoint().ok());
  ASSERT_TRUE((*db2)->Commit().ok());
  EXPECT_TRUE((*db2)->Checkpoint().ok());
}

// The bounded-recovery guarantee: after a checkpoint, Open replays only
// the WAL suffix written since it, asserted both through the facade
// accessor and the archis_wal_recovered_bytes counter.
TEST(CheckpointTest, OpenReplaysOnlyTheWalSuffixPastACheckpoint) {
  const std::string path = TempPath("ckpt_suffix.wal");
  ArchISOptions opts;
  opts.wal.path = path;
  {
    auto db = ArchIS::Open(opts, D(1995, 1, 1));
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateRelation(EmpSpec()).ok());
    for (int i = 1; i <= 20; ++i) {
      ASSERT_TRUE((*db)->AdvanceClock(D(1995, 1, 1).AddDays(i)).ok());
      ASSERT_TRUE(
          (*db)->Insert("employees", Emp(i, "e" + std::to_string(i), 100 * i))
              .ok());
    }
  }
  // Reopen with no checkpoint: the whole log replays.
  uint64_t full_replay_bytes = 0;
  std::string after_checkpoint;
  {
    auto db = ArchIS::Open(opts, D(1995, 1, 1));
    ASSERT_TRUE(db.ok());
    full_replay_bytes = (*db)->last_recovery_replayed_bytes();
    EXPECT_GT(full_replay_bytes, 0u);
    ASSERT_TRUE((*db)->Checkpoint().ok());
    after_checkpoint = AllHistories(db->get());
  }
  // Reopen right after the checkpoint: nothing to replay.
  {
    const uint64_t before = RecoveredBytesCounter()->value();
    auto db = ArchIS::Open(opts, D(1995, 1, 1));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_EQ((*db)->last_recovery_replayed_bytes(), 0u);
    EXPECT_EQ(RecoveredBytesCounter()->value() - before, 0u);
    EXPECT_EQ((*db)->checkpoint_seq(), 1u);
    EXPECT_EQ(AllHistories(db->get()), after_checkpoint);
    EXPECT_EQ((*db)->Now(), D(1995, 1, 21));
    // Post-checkpoint traffic, including DDL, lands in the suffix.
    RelationSpec proj;
    proj.name = "projects";
    proj.schema = Schema({{"pid", DataType::kInt64},
                          {"budget", DataType::kInt64}});
    proj.key_columns = {"pid"};
    proj.doc_name = "projects.xml";
    ASSERT_TRUE((*db)->CreateRelation(proj).ok());
    ASSERT_TRUE((*db)->AdvanceClock(D(1995, 2, 1)).ok());
    ASSERT_TRUE((*db)->Insert("projects",
                              Tuple{Value(int64_t{1}), Value(int64_t{5000})})
                    .ok());
    ASSERT_TRUE((*db)->Update("employees", {Value(int64_t{3})},
                              Emp(3, "e3", 9999))
                    .ok());
    after_checkpoint = AllHistories(db->get());
  }
  // Reopen again: only that suffix replays, and it is far smaller than
  // the pre-checkpoint full replay.
  {
    const uint64_t before = RecoveredBytesCounter()->value();
    auto db = ArchIS::Open(opts, D(1995, 1, 1));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    const uint64_t suffix = (*db)->last_recovery_replayed_bytes();
    EXPECT_GT(suffix, 0u);
    EXPECT_LT(suffix, full_replay_bytes);
    EXPECT_EQ(RecoveredBytesCounter()->value() - before, suffix);
    EXPECT_EQ(AllHistories(db->get()), after_checkpoint);
  }
}

// The checkpoint crash matrix: a deterministic crash is injected before
// every phase of the protocol (manifest fsync, atomic install, WAL reset),
// with and without a completed earlier checkpoint, and recovery must
// reproduce the durably-acked shadow byte for byte every time.
TEST(CheckpointTest, CrashAtEveryCheckpointPhaseRecoversShadowState) {
  const CheckpointCrashPoint phases[] = {
      CheckpointCrashPoint::kBeforeManifestSync,
      CheckpointCrashPoint::kBeforeInstall,
      CheckpointCrashPoint::kBeforeWalReset,
  };
  ScriptedDmlConfig cfg;
  cfg.seed = 19;
  cfg.transactions = 10;
  int case_no = 0;
  for (int prior_checkpoint = 0; prior_checkpoint <= 1; ++prior_checkpoint) {
    for (CheckpointCrashPoint phase : phases) {
      SCOPED_TRACE("phase " + std::to_string(static_cast<int>(phase)) +
                   " prior_checkpoint " + std::to_string(prior_checkpoint));
      const std::string path =
          TempPath("ckpt_crash_" + std::to_string(case_no++) + ".wal");
      ArchISOptions opts;
      opts.wal.path = path;
      auto db = ArchIS::Open(opts, cfg.start_date);
      ASSERT_TRUE(db.ok());
      ArchIS shadow(ArchISOptions{}, cfg.start_date);
      auto run = RunScriptedDml(db->get(), &shadow, cfg);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      ASSERT_FALSE(run->crashed);
      if (prior_checkpoint) {
        ASSERT_TRUE((*db)->Checkpoint().ok());
        // Post-checkpoint traffic the crashed second checkpoint must not
        // lose, mirrored onto the shadow.
        for (int i = 1; i <= 3; ++i) {
          ASSERT_TRUE((*db)->Insert("employees", Emp(i, "post", 50 * i)).ok());
          ASSERT_TRUE(shadow.Insert("employees", Emp(i, "post", 50 * i)).ok());
        }
      }
      const std::string expected = AllHistories(&shadow);
      Status st = (*db)->Checkpoint(phase);
      ASSERT_EQ(st.code(), StatusCode::kIOError) << st.ToString();
      db->reset();  // "power loss"

      ArchISOptions reopen;
      reopen.wal.path = path;
      auto recovered = ArchIS::Open(reopen, cfg.start_date);
      ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
      EXPECT_EQ(AllHistories(recovered->get()), expected);
      // The recovered instance is fully operational: it takes new durable
      // work and a subsequent checkpoint succeeds.
      ASSERT_TRUE(
          (*recovered)->Insert("employees", Emp(999, "after", 1)).ok());
      ASSERT_TRUE(shadow.Insert("employees", Emp(999, "after", 1)).ok());
      ASSERT_TRUE((*recovered)->Checkpoint().ok());
      recovered->reset();
      auto again = ArchIS::Open(reopen, cfg.start_date);
      ASSERT_TRUE(again.ok()) << again.status().ToString();
      EXPECT_EQ(AllHistories(again->get()), AllHistories(&shadow));
      EXPECT_EQ((*again)->last_recovery_replayed_bytes(), 0u);
    }
  }
}

// A lying disk tears the newest manifest after install: recovery must fall
// back to the previous manifest and still converge with the shadow,
// because the WAL it pairs with was never truncated.
TEST(CheckpointTest, TornNewestManifestFallsBackToPrevious) {
  const std::string path = TempPath("ckpt_fallback.wal");
  ArchISOptions opts;
  opts.wal.path = path;
  // Every checkpoint writes a base (and rotates the previous chain to
  // .prev) so tearing the newest file exercises the generation fallback
  // rather than the in-chain torn-delta handling.
  opts.wal.checkpoint_base_every = 1;
  ArchIS shadow(ArchISOptions{}, D(1995, 1, 1));
  {
    auto db = ArchIS::Open(opts, D(1995, 1, 1));
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateRelation(EmpSpec()).ok());
    ASSERT_TRUE(shadow.CreateRelation(EmpSpec()).ok());
    for (int i = 1; i <= 5; ++i) {
      ASSERT_TRUE((*db)->Insert("employees", Emp(i, "a", 10 * i)).ok());
      ASSERT_TRUE(shadow.Insert("employees", Emp(i, "a", 10 * i)).ok());
    }
    ASSERT_TRUE((*db)->Checkpoint().ok());  // seq 1
    ASSERT_TRUE((*db)->AdvanceClock(D(1995, 6, 1)).ok());
    ASSERT_TRUE(shadow.AdvanceClock(D(1995, 6, 1)).ok());
    for (int i = 6; i <= 9; ++i) {
      ASSERT_TRUE((*db)->Insert("employees", Emp(i, "b", 10 * i)).ok());
      ASSERT_TRUE(shadow.Insert("employees", Emp(i, "b", 10 * i)).ok());
    }
    // Second checkpoint installs manifest seq 2 (rotating seq 1 to .prev)
    // but "crashes" before the WAL reset, so the log still carries
    // everything since seq 1.
    ASSERT_EQ((*db)->Checkpoint(CheckpointCrashPoint::kBeforeWalReset).code(),
              StatusCode::kIOError);
  }
  // Tear the newest manifest in half.
  const std::string newest = CheckpointPath(path);
  const auto full_size = std::filesystem::file_size(newest);
  ASSERT_GT(full_size, 16u);
  std::filesystem::resize_file(newest, full_size / 2);

  const uint64_t fallbacks_before = FallbacksCounter()->value();
  auto db = ArchIS::Open(opts, D(1995, 1, 1));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(FallbacksCounter()->value() - fallbacks_before, 1u);
  EXPECT_EQ((*db)->checkpoint_seq(), 1u);  // recovered from the fallback
  EXPECT_EQ(AllHistories(db->get()), AllHistories(&shadow));
}

// WalOptions::checkpoint_after_bytes keeps the log (and therefore
// recovery time) bounded under a sustained workload.
TEST(CheckpointTest, AutoCheckpointBoundsWalSizeUnderSustainedLoad) {
  const std::string path = TempPath("ckpt_auto.wal");
  const uint64_t threshold = 8 * 1024;
  ArchISOptions opts;
  opts.wal.path = path;
  opts.wal.checkpoint_after_bytes = threshold;
  std::string final_state;
  uint64_t max_wal_size = 0;
  {
    auto db = ArchIS::Open(opts, D(1995, 1, 1));
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateRelation(EmpSpec()).ok());
    for (int i = 1; i <= 300; ++i) {
      if (i % 25 == 0) {
        ASSERT_TRUE((*db)->AdvanceClock(D(1995, 1, 1).AddDays(i / 25)).ok());
      }
      ASSERT_TRUE(
          (*db)->Insert("employees", Emp(i, "w" + std::to_string(i), i)).ok());
      max_wal_size =
          std::max<uint64_t>(max_wal_size, std::filesystem::file_size(path));
    }
    EXPECT_GT((*db)->checkpoint_seq(), 1u);
    final_state = AllHistories(db->get());
  }
  // Bounded: the log never grows past the threshold plus one commit unit
  // (the commit that crosses the threshold triggers the truncation).
  EXPECT_LT(max_wal_size, 2 * threshold);
  // And the recovery bound follows the log bound.
  auto db = ArchIS::Open(opts, D(1995, 1, 1));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_LT((*db)->last_recovery_replayed_bytes(), 2 * threshold);
  EXPECT_EQ(AllHistories(db->get()), final_state);
}

// The incremental chain end to end: a base manifest, two delta appends,
// and a WAL suffix must recover to byte-identical H-documents — and the
// deltas must stay small (proportional to the rows dirtied, not to the
// database), which is the whole point of fuzzy incremental checkpoints.
TEST(CheckpointTest, IncrementalChainWithWalSuffixRecoversExactly) {
  const std::string path = TempPath("ckpt_chain.wal");
  ArchISOptions opts;
  opts.wal.path = path;
  ArchIS shadow(ArchISOptions{}, D(1995, 1, 1));
  uint64_t base_bytes = 0;
  std::string expected;
  {
    auto db = ArchIS::Open(opts, D(1995, 1, 1));
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateRelation(EmpSpec()).ok());
    ASSERT_TRUE(shadow.CreateRelation(EmpSpec()).ok());
    // A wide base: 60 rows.
    for (int i = 1; i <= 60; ++i) {
      ASSERT_TRUE((*db)->Insert("employees", Emp(i, "base", 10 * i)).ok());
      ASSERT_TRUE(shadow.Insert("employees", Emp(i, "base", 10 * i)).ok());
    }
    ASSERT_TRUE((*db)->Checkpoint().ok());  // base, seq 1
    base_bytes = std::filesystem::file_size(CheckpointPath(path));

    // Delta 1: touch two rows.
    ASSERT_TRUE((*db)->AdvanceClock(D(1995, 2, 1)).ok());
    ASSERT_TRUE(shadow.AdvanceClock(D(1995, 2, 1)).ok());
    ASSERT_TRUE((*db)->Update("employees", {Value(int64_t{1})},
                              Emp(1, "d1", 11)).ok());
    ASSERT_TRUE(shadow.Update("employees", {Value(int64_t{1})},
                              Emp(1, "d1", 11)).ok());
    ASSERT_TRUE((*db)->Delete("employees", {Value(int64_t{60})}).ok());
    ASSERT_TRUE(shadow.Delete("employees", {Value(int64_t{60})}).ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());  // delta, seq 2
    const uint64_t after_delta1 =
        std::filesystem::file_size(CheckpointPath(path));
    // The delta appended far less than a second base would have.
    EXPECT_LT(after_delta1 - base_bytes, base_bytes / 2);

    // Delta 2: an update and a fresh insert.
    ASSERT_TRUE((*db)->AdvanceClock(D(1995, 3, 1)).ok());
    ASSERT_TRUE(shadow.AdvanceClock(D(1995, 3, 1)).ok());
    ASSERT_TRUE((*db)->Update("employees", {Value(int64_t{2})},
                              Emp(2, "d2", 22)).ok());
    ASSERT_TRUE(shadow.Update("employees", {Value(int64_t{2})},
                              Emp(2, "d2", 22)).ok());
    ASSERT_TRUE((*db)->Insert("employees", Emp(61, "d2", 61)).ok());
    ASSERT_TRUE(shadow.Insert("employees", Emp(61, "d2", 61)).ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());  // delta, seq 3

    // WAL suffix past the chain: commits never absorbed by any manifest.
    ASSERT_TRUE((*db)->AdvanceClock(D(1995, 4, 1)).ok());
    ASSERT_TRUE(shadow.AdvanceClock(D(1995, 4, 1)).ok());
    ASSERT_TRUE((*db)->Update("employees", {Value(int64_t{3})},
                              Emp(3, "suffix", 33)).ok());
    ASSERT_TRUE(shadow.Update("employees", {Value(int64_t{3})},
                              Emp(3, "suffix", 33)).ok());
    ASSERT_TRUE((*db)->Insert("employees", Emp(62, "suffix", 62)).ok());
    ASSERT_TRUE(shadow.Insert("employees", Emp(62, "suffix", 62)).ok());
    expected = AllHistories(db->get());
    ASSERT_EQ(expected, AllHistories(&shadow));
  }
  auto db = ArchIS::Open(opts, D(1995, 1, 1));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(AllHistories(db->get()), expected);
  EXPECT_EQ((*db)->checkpoint_seq(), 3u);
  EXPECT_EQ((*db)->Now(), D(1995, 4, 1));
  // The recovered instance keeps working: another delta cycle and reopen.
  ASSERT_TRUE((*db)->Insert("employees", Emp(63, "post", 63)).ok());
  ASSERT_TRUE(shadow.Insert("employees", Emp(63, "post", 63)).ok());
  ASSERT_TRUE((*db)->Checkpoint().ok());
  expected = AllHistories(db->get());
  db->reset();
  auto again = ArchIS::Open(opts, D(1995, 1, 1));
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(AllHistories(again->get()), expected);
  EXPECT_EQ(AllHistories(again->get()), AllHistories(&shadow));
}

// Crash while two transactions interleave in the log: the committed one
// recovers, the uncommitted one's BEGIN/CHANGE frames (made durable by the
// winner's group-commit batch) are dropped.
TEST(RecoveryTest, CrashDuringConcurrentCommitDropsTheUncommittedRun) {
  const std::string path = TempPath("concurrent_crash.wal");
  ArchISOptions opts;
  opts.wal.path = path;
  ArchIS shadow(ArchISOptions{}, D(1995, 1, 1));
  {
    auto db = ArchIS::Open(opts, D(1995, 1, 1));
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateRelation(EmpSpec()).ok());
    ASSERT_TRUE(shadow.CreateRelation(EmpSpec()).ok());
    BEGIN_TXN(loser, db->get());
    BEGIN_TXN(winner, db->get());
    // The loser's frames are enqueued first, so they land in the log
    // ahead of the winner's COMMIT — interleaved, durable, uncommitted.
    ASSERT_TRUE(loser.Insert("employees", Emp(1, "uncommitted", 1)).ok());
    ASSERT_TRUE(winner.Insert("employees", Emp(2, "committed", 2)).ok());
    ASSERT_TRUE(winner.Commit().ok());
    ASSERT_TRUE(shadow.Insert("employees", Emp(2, "committed", 2)).ok());
    // "Power loss" with the loser still open: drop the handle and the
    // instance without committing.
    IgnoreStatus(loser.Abort());
  }
  auto rec = Wal::Recover(path);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->items.size(), 2u);  // CREATE + the winner's txn
  auto db = ArchIS::Open(opts, D(1995, 1, 1));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(AllHistories(db->get()), AllHistories(&shadow));
  auto table = (*db)->current_db().catalog().GetTable("employees");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->RowCount(), 1u);
}

// Composite (surrogate) keys: the manifest must persist the surrogate-id
// map so recovered instances continue numbering where they left off
// instead of splitting one key's history across two ids.
TEST(CheckpointTest, SurrogateKeysStayStableAcrossCheckpointRecovery) {
  const std::string path = TempPath("ckpt_surrogate.wal");
  RelationSpec spec;
  spec.name = "parts";
  spec.schema = Schema({{"code", DataType::kString},
                        {"qty", DataType::kInt64}});
  spec.key_columns = {"code"};
  spec.doc_name = "parts.xml";
  ArchISOptions opts;
  opts.wal.path = path;
  {
    auto db = ArchIS::Open(opts, D(1995, 1, 1));
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateRelation(spec).ok());
    ASSERT_TRUE(
        (*db)->Insert("parts", Tuple{Value("ax"), Value(int64_t{1})}).ok());
    ASSERT_TRUE(
        (*db)->Insert("parts", Tuple{Value("bx"), Value(int64_t{2})}).ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  auto db = ArchIS::Open(opts, D(1995, 1, 1));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto set = (*db)->archiver().htables("parts");
  ASSERT_TRUE(set.ok());
  EXPECT_EQ((*set)->surrogate_ids().size(), 2u);
  EXPECT_EQ((*set)->next_surrogate(), 3);
  // Updating an existing key continues its history under the same id ...
  ASSERT_TRUE((*db)->AdvanceClock(D(1995, 3, 1)).ok());
  ASSERT_TRUE((*db)->Update("parts", {Value("ax")},
                            Tuple{Value("ax"), Value(int64_t{10})})
                  .ok());
  // ... and a new key gets the next unused surrogate, not a recycled one.
  ASSERT_TRUE(
      (*db)->Insert("parts", Tuple{Value("cx"), Value(int64_t{3})}).ok());
  EXPECT_EQ((*set)->surrogate_ids().size(), 3u);
  EXPECT_EQ((*set)->next_surrogate(), 4);
  // The key store holds exactly three ids (no history split).
  uint64_t key_rows = 0;
  ASSERT_TRUE((*set)->key_store()
                  ->ScanHistory([&](const Tuple&) {
                    ++key_rows;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(key_rows, 3u);
}

}  // namespace
}  // namespace archis::core
