// XQuery engine tests: lexer/parser shapes, evaluation semantics, the
// temporal function library, and all eight example queries of the paper's
// Section 4 against the running example of Tables 1-2 / Figures 1-4.
#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xml/serializer.h"
#include "xquery/evaluator.h"
#include "xquery/parser.h"

namespace archis::xquery {
namespace {

Date D(int y, int m, int d) { return Date::FromYmd(y, m, d); }

// The paper's running example: Bob's history (Table 1) plus two employees
// added to make QUERY 7/8 non-empty, and the departments of Table 2.
constexpr const char* kEmployeesXml = R"(
<employees tstart="1995-01-01" tend="9999-12-31">
  <employee tstart="1995-01-01" tend="1996-12-31">
    <id tstart="1995-01-01" tend="1996-12-31">1001</id>
    <name tstart="1995-01-01" tend="1996-12-31">Bob</name>
    <salary tstart="1995-01-01" tend="1995-05-31">60000</salary>
    <salary tstart="1995-06-01" tend="1996-12-31">70000</salary>
    <title tstart="1995-01-01" tend="1995-09-30">Engineer</title>
    <title tstart="1995-10-01" tend="1996-01-31">Sr Engineer</title>
    <title tstart="1996-02-01" tend="1996-12-31">TechLeader</title>
    <deptno tstart="1995-01-01" tend="1995-09-30">d01</deptno>
    <deptno tstart="1995-10-01" tend="1996-12-31">d02</deptno>
  </employee>
  <employee tstart="1995-03-01" tend="9999-12-31">
    <id tstart="1995-03-01" tend="9999-12-31">1002</id>
    <name tstart="1995-03-01" tend="9999-12-31">Ann</name>
    <salary tstart="1995-03-01" tend="9999-12-31">80000</salary>
    <title tstart="1995-03-01" tend="9999-12-31">Sr Engineer</title>
    <deptno tstart="1995-03-01" tend="9999-12-31">d01</deptno>
  </employee>
  <employee tstart="1995-01-01" tend="1996-12-31">
    <id tstart="1995-01-01" tend="1996-12-31">1003</id>
    <name tstart="1995-01-01" tend="1996-12-31">Carl</name>
    <salary tstart="1995-01-01" tend="1996-12-31">65000</salary>
    <title tstart="1995-01-01" tend="1996-12-31">Analyst</title>
    <deptno tstart="1995-01-01" tend="1995-09-30">d01</deptno>
    <deptno tstart="1995-10-01" tend="1996-12-31">d02</deptno>
  </employee>
</employees>)";

constexpr const char* kDeptsXml = R"(
<depts tstart="1992-01-01" tend="9999-12-31">
  <dept tstart="1994-01-01" tend="1998-12-31">
    <deptno tstart="1994-01-01" tend="1998-12-31">d01</deptno>
    <deptname tstart="1994-01-01" tend="1998-12-31">QA</deptname>
    <mgrno tstart="1994-01-01" tend="1998-12-31">2501</mgrno>
  </dept>
  <dept tstart="1992-01-01" tend="1998-12-31">
    <deptno tstart="1992-01-01" tend="1998-12-31">d02</deptno>
    <deptname tstart="1992-01-01" tend="1998-12-31">RD</deptname>
    <mgrno tstart="1992-01-01" tend="1996-12-31">3402</mgrno>
    <mgrno tstart="1997-01-01" tend="1998-12-31">1009</mgrno>
  </dept>
  <dept tstart="1993-01-01" tend="1997-12-31">
    <deptno tstart="1993-01-01" tend="1997-12-31">d03</deptno>
    <deptname tstart="1993-01-01" tend="1997-12-31">Sales</deptname>
    <mgrno tstart="1993-01-01" tend="1997-12-31">4748</mgrno>
  </dept>
</depts>)";

class XQueryPaperTest : public ::testing::Test {
 protected:
  void SetUp() override {
    employees_ = *xml::ParseDocument(kEmployeesXml);
    depts_ = *xml::ParseDocument(kDeptsXml);
    EvalContext ctx;
    ctx.current_date = D(1997, 6, 1);
    auto emp = employees_;
    auto dep = depts_;
    ctx.resolve_doc =
        [emp, dep](const std::string& name) -> Result<xml::XmlNodePtr> {
      if (name == "employees.xml" || name == "emp.xml") return emp;
      if (name == "depts.xml") return dep;
      return Status::NotFound("doc " + name);
    };
    evaluator_ = std::make_unique<Evaluator>(std::move(ctx));
  }

  Sequence Eval(const std::string& q) {
    auto r = evaluator_->EvaluateQuery(q);
    EXPECT_TRUE(r.ok()) << q << " -> " << r.status().ToString();
    return r.ok() ? *r : Sequence{};
  }

  xml::XmlNodePtr employees_, depts_;
  std::unique_ptr<Evaluator> evaluator_;
};

// -- Parser shapes -----------------------------------------------------------

TEST(XQueryParserTest, ParsesFlworWithWhereReturn) {
  auto e = ParseXQuery(
      "for $e in doc(\"x\")/a/b where $e/c = \"v\" return $e/d");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ((*e)->kind, ExprKind::kFlwor);
  EXPECT_EQ((*e)->clauses.size(), 1u);
  EXPECT_NE((*e)->where, nullptr);
}

TEST(XQueryParserTest, ParsesMultiBindingFor) {
  auto e = ParseXQuery("for $a in doc(\"x\")/r/s, $b in $a/t return $b");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->clauses.size(), 2u);
  EXPECT_FALSE((*e)->clauses[1].is_let);
}

TEST(XQueryParserTest, ParsesDirectConstructor) {
  auto e = ParseXQuery(
      "for $e in doc(\"x\")/a/b return <out kind=\"emp\">{$e/name} "
      "literal</out>");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  const ExprPtr& ret = (*e)->ret;
  ASSERT_EQ(ret->kind, ExprKind::kElementCtor);
  EXPECT_EQ(ret->str, "out");
  ASSERT_EQ(ret->attrs.size(), 1u);
  EXPECT_EQ(ret->attrs[0].value, "emp");
  EXPECT_EQ(ret->children.size(), 2u);
}

TEST(XQueryParserTest, ParsesQuantified) {
  auto e = ParseXQuery(
      "for $x in doc(\"d\")/a/b where every $y in $x/c satisfies "
      "(string($y) = \"q\") return $x");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ((*e)->where->kind, ExprKind::kQuantified);
  EXPECT_TRUE((*e)->where->every_quant);
}

TEST(XQueryParserTest, ParsesCommentsAndParens) {
  auto e = ParseXQuery("(: a comment :) for $x in doc(\"d\")/a/b return "
                       "($x/c, $x/d)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ret->kind, ExprKind::kSequence);
}

TEST(XQueryParserTest, RejectsMalformed) {
  EXPECT_FALSE(ParseXQuery("for $x in").ok());
  EXPECT_FALSE(ParseXQuery("for $x doc(\"d\")/a return $x").ok());
  EXPECT_FALSE(ParseXQuery("let $x = 3 return $x").ok());  // needs :=
  EXPECT_FALSE(ParseXQuery("for $x in doc(\"d\")/a[ return $x").ok());
}

// -- Paper Section 4 queries ---------------------------------------------------

TEST_F(XQueryPaperTest, Query1TemporalProjection) {
  Sequence r = Eval(
      "element title_history{ for $t in doc(\"employees.xml\")/employees/"
      "employee[name=\"Bob\"]/title return $t }");
  ASSERT_EQ(r.size(), 1u);
  auto titles = r[0].node()->ChildrenNamed("title");
  ASSERT_EQ(titles.size(), 3u);
  EXPECT_EQ(titles[0]->StringValue(), "Engineer");
  EXPECT_EQ(titles[2]->StringValue(), "TechLeader");
}

TEST_F(XQueryPaperTest, Query2TemporalSnapshot) {
  Sequence r = Eval(
      "for $m in doc(\"depts.xml\")/depts/dept/mgrno"
      "[tstart(.) <= xs:date(\"1994-05-06\") and "
      " tend(.) >= xs:date(\"1994-05-06\")] return $m");
  ASSERT_EQ(r.size(), 3u);  // 2501, 3402, 4748 all managed on that date
  EXPECT_EQ(r[0].node()->StringValue(), "2501");
}

TEST_F(XQueryPaperTest, Query3TemporalSlicing) {
  Sequence r = Eval(
      "for $e in doc(\"employees.xml\")/employees/employee"
      "[ toverlaps(., telement( xs:date(\"1994-05-06\"),"
      " xs:date(\"1995-05-06\") ) ) ] return $e/name");
  // Bob and Carl joined 1995-01-01; Ann 1995-03-01: all overlap the slice.
  ASSERT_EQ(r.size(), 3u);
}

TEST_F(XQueryPaperTest, Query4TemporalJoin) {
  Sequence r = Eval(
      "element manages{"
      " for $d in doc(\"depts.xml\")/depts/dept"
      " for $m in $d/mgrno"
      " return element manage {$d/deptno, $m,"
      "  element employees {"
      "   for $e in doc(\"employees.xml\")/employees/employee"
      "   where $e/deptno = $d/deptno and"
      "    not(empty(overlapinterval($e, $m) ) )"
      "   return($e/name, overlapinterval($e,$m)) }}}");
  ASSERT_EQ(r.size(), 1u);
  auto manages = r[0].node()->ChildrenNamed("manage");
  ASSERT_EQ(manages.size(), 4u);  // one per (dept, mgr) version
  // d01's manager 2501 overlaps Bob, Ann and Carl.
  const auto& d01 = manages[0];
  EXPECT_EQ(d01->FirstChildNamed("deptno")->StringValue(), "d01");
  auto emps = d01->FirstChildNamed("employees");
  ASSERT_NE(emps, nullptr);
  EXPECT_EQ(emps->ChildrenNamed("name").size(), 3u);
  EXPECT_EQ(emps->ChildrenNamed("interval").size(), 3u);
}

TEST_F(XQueryPaperTest, Query5TemporalAggregate) {
  Sequence r = Eval(
      "let $s := document(\"emp.xml\")/employees/employee/salary "
      "return tavg($s)");
  // Average salary history changes at every salary event boundary.
  ASSERT_GE(r.size(), 3u);
  // First step: only Bob and Carl employed (60000+65000)/2.
  EXPECT_EQ(r[0].node()->name(), "tavg");
  EXPECT_EQ(r[0].node()->StringValue(), "62500.00");
  auto iv = r[0].node()->Interval();
  ASSERT_TRUE(iv.ok());
  EXPECT_EQ(iv->tstart, D(1995, 1, 1));
}

TEST_F(XQueryPaperTest, Query6Restructuring) {
  Sequence r = Eval(
      "for $e in doc(\"emp.xml\")/employees/employee[name=\"Bob\"] "
      "let $d := $e/deptno let $t := $e/title "
      "let $overlaps := restructure($d, $t) return max($overlaps)");
  ASSERT_EQ(r.size(), 1u);
  // Bob's longest unchanged (dept,title) run: d02+TechLeader
  // 1996-02-01..1996-12-31 = 335 days.
  EXPECT_DOUBLE_EQ(r[0].number(), 335);
}

TEST_F(XQueryPaperTest, Query7Since) {
  Sequence r = Eval(
      "for $e in doc(\"employees.xml\")/employees/employee "
      "let $m := $e/title[.=\"Sr Engineer\" and tend(.)=current-date()] "
      "let $d := $e/deptno[.=\"d01\" and tcontains($m, .)] "
      "where not empty($d) and not empty($m) "
      "return <employee>{$e/id, $e/name}</employee>");
  // Only Ann has been a Sr Engineer in d01 since she joined.
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].node()->FirstChildNamed("name")->StringValue(), "Ann");
  EXPECT_EQ(r[0].node()->FirstChildNamed("id")->StringValue(), "1002");
}

TEST_F(XQueryPaperTest, Query8PeriodContainment) {
  Sequence r = Eval(
      "for $e1 in doc(\"employees.xml\")/employees/employee[name = \"Bob\"] "
      "for $e2 in doc(\"employees.xml\")/employees/employee[name != \"Bob\"] "
      "where (every $d1 in $e1/deptno satisfies some $d2 in $e2/deptno "
      "satisfies (string($d1)=string($d2) and tequals($d2,$d1))) and "
      "(every $d2 in $e2/deptno satisfies some $d1 in $e1/deptno "
      "satisfies (string($d2)=string($d1) and tequals($d1,$d2))) "
      "return <employee>{$e2/name}</employee>");
  // Carl has exactly Bob's department history; Ann does not.
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].node()->StringValue(), "Carl");
}

// -- Function library ----------------------------------------------------------

TEST_F(XQueryPaperTest, TemporalPredicateFunctions) {
  EXPECT_TRUE(Eval("toverlaps(telement(xs:date(\"1995-01-01\"),"
                   "xs:date(\"1995-06-01\")), telement("
                   "xs:date(\"1995-05-01\"), xs:date(\"1995-12-31\")))")[0]
                  .boolean());
  EXPECT_TRUE(Eval("tprecedes(telement(xs:date(\"1995-01-01\"),"
                   "xs:date(\"1995-02-01\")), telement("
                   "xs:date(\"1995-03-01\"), xs:date(\"1995-12-31\")))")[0]
                  .boolean());
  EXPECT_TRUE(Eval("tmeets(telement(xs:date(\"1995-01-01\"),"
                   "xs:date(\"1995-05-31\")), telement("
                   "xs:date(\"1995-06-01\"), xs:date(\"1995-12-31\")))")[0]
                  .boolean());
  EXPECT_TRUE(Eval("tcontains(telement(xs:date(\"1995-01-01\"),"
                   "xs:date(\"1995-12-31\")), telement("
                   "xs:date(\"1995-03-01\"), xs:date(\"1995-06-30\")))")[0]
                  .boolean());
  EXPECT_FALSE(Eval("tequals(telement(xs:date(\"1995-01-01\"),"
                    "xs:date(\"1995-12-31\")), telement("
                    "xs:date(\"1995-01-01\"), xs:date(\"1995-06-30\")))")[0]
                   .boolean());
}

TEST_F(XQueryPaperTest, IntervalAndDurationFunctions) {
  Sequence span = Eval("timespan(telement(xs:date(\"1995-01-01\"),"
                       "xs:date(\"1995-01-10\")))");
  ASSERT_EQ(span.size(), 1u);
  EXPECT_DOUBLE_EQ(span[0].number(), 10);
  Sequence iv = Eval(
      "tinterval(doc(\"employees.xml\")/employees/employee[name=\"Ann\"])");
  ASSERT_EQ(iv.size(), 1u);
  EXPECT_EQ(iv[0].node()->name(), "interval");
  EXPECT_EQ(*iv[0].node()->Attr("tstart"), "1995-03-01");
}

TEST_F(XQueryPaperTest, TendResolvesNowToCurrentDate) {
  // Ann's intervals are live: tend() must report the context current date.
  Sequence r = Eval(
      "for $e in doc(\"employees.xml\")/employees/employee[name=\"Ann\"] "
      "return tend($e)");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].date(), D(1997, 6, 1));
}

TEST_F(XQueryPaperTest, RtendAndExternalNow) {
  Sequence r1 = Eval(
      "rtend(doc(\"employees.xml\")/employees/employee[name=\"Ann\"])");
  ASSERT_EQ(r1.size(), 1u);
  EXPECT_EQ(*r1[0].node()->Attr("tend"), "1997-06-01");
  Sequence r2 = Eval(
      "externalnow(doc(\"employees.xml\")/employees/employee[name=\"Ann\"])");
  EXPECT_EQ(*r2[0].node()->Attr("tend"), "now");
  // Child elements rewritten too.
  EXPECT_EQ(*r2[0].node()->FirstChildNamed("salary")->Attr("tend"), "now");
}

TEST_F(XQueryPaperTest, CoalesceFunction) {
  // Bob's two salary intervals don't coalesce (different values), but his
  // two deptno entries for d02/d01 coalesce per value.
  Sequence r = Eval(
      "coalesce(doc(\"employees.xml\")/employees/employee/deptno)");
  // d01 appears as Bob [95-01..95-09], Ann [95-03..now], Carl [95-01..95-09]
  // -> coalesces to one interval [1995-01-01, now]; d02 from Bob+Carl.
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].node()->StringValue(), "d01");
  EXPECT_EQ(*r[0].node()->Attr("tend"), "9999-12-31");
  EXPECT_EQ(r[1].node()->StringValue(), "d02");
}

TEST_F(XQueryPaperTest, StandardBuiltins) {
  EXPECT_DOUBLE_EQ(
      Eval("count(doc(\"employees.xml\")/employees/employee)")[0].number(),
      3);
  EXPECT_DOUBLE_EQ(
      Eval("max(doc(\"employees.xml\")/employees/employee/salary)")[0]
          .number(),
      80000);
  EXPECT_EQ(
      Eval("string(doc(\"employees.xml\")/employees/employee/name)")[0]
          .str(),
      "Bob");
  EXPECT_EQ(Eval("distinct-values(doc(\"employees.xml\")/employees/"
                 "employee/deptno)")
                .size(),
            2u);
  EXPECT_TRUE(Eval("empty(())")[0].boolean());
  EXPECT_DOUBLE_EQ(Eval("2 + 3 * 4")[0].number(), 14);
  EXPECT_DOUBLE_EQ(Eval("10 div 4")[0].number(), 2.5);
}

TEST_F(XQueryPaperTest, AttributeAxisAndPositional) {
  Sequence attr = Eval(
      "for $e in doc(\"employees.xml\")/employees/employee[name=\"Ann\"] "
      "return $e/@tstart");
  ASSERT_EQ(attr.size(), 1u);
  EXPECT_EQ(attr[0].str(), "1995-03-01");
  Sequence second = Eval(
      "doc(\"employees.xml\")/employees/employee[2]/name");
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].node()->StringValue(), "Ann");
}

TEST_F(XQueryPaperTest, DescendantAxis) {
  Sequence r = Eval("count(doc(\"employees.xml\")//salary)");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_DOUBLE_EQ(r[0].number(), 4);
}

TEST_F(XQueryPaperTest, IfThenElseAndQuantifiers) {
  Sequence r = Eval(
      "if (exists(doc(\"employees.xml\")/employees/employee[name=\"Bob\"]))"
      " then \"yes\" else \"no\"");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].str(), "yes");
  Sequence q = Eval(
      "some $s in doc(\"employees.xml\")/employees/employee/salary "
      "satisfies $s > 75000");
  EXPECT_TRUE(q[0].boolean());
  Sequence q2 = Eval(
      "every $s in doc(\"employees.xml\")/employees/employee/salary "
      "satisfies $s > 75000");
  EXPECT_FALSE(q2[0].boolean());
}

TEST_F(XQueryPaperTest, TemporalAggregateFamily) {
  // tsum/tcount over all salaries: count peaks at 3 while everyone is
  // employed, drops to 1 (Ann) after Bob and Carl leave.
  Sequence cnt = Eval(
      "tcount(doc(\"employees.xml\")/employees/employee/salary)");
  ASSERT_FALSE(cnt.empty());
  EXPECT_EQ(cnt.back().node()->StringValue(), "1.00");
  Sequence mx = Eval(
      "tmax(doc(\"employees.xml\")/employees/employee/salary)");
  ASSERT_FALSE(mx.empty());
  EXPECT_EQ(mx.back().node()->StringValue(), "80000.00");
}

TEST_F(XQueryPaperTest, RisingExtensionAggregate) {
  // Total payroll rises when Ann joins (1995-03-01) and when Bob's salary
  // jumps (1995-06-01), so a rising run must cover those boundaries.
  Sequence r = Eval(
      "trising(doc(\"employees.xml\")/employees/employee/salary)");
  ASSERT_FALSE(r.empty());
  EXPECT_EQ(r[0].node()->name(), "rising");
  auto iv = r[0].node()->Interval();
  ASSERT_TRUE(iv.ok());
  EXPECT_LE(iv->tstart, D(1995, 3, 1));
  EXPECT_GE(iv->tend, D(1995, 6, 1));
}

TEST_F(XQueryPaperTest, MovingWindowExtensionAggregate) {
  Sequence r = Eval(
      "tmovavg(doc(\"employees.xml\")/employees/employee/salary, 90)");
  ASSERT_GE(r.size(), 3u);
  for (const Item& item : r) {
    EXPECT_EQ(item.node()->name(), "tmovavg");
    EXPECT_TRUE(item.node()->Interval().ok());
  }
}

TEST_F(XQueryPaperTest, ErrorsSurfaceCleanly) {
  EXPECT_FALSE(evaluator_->EvaluateQuery("$unbound").ok());
  EXPECT_FALSE(evaluator_->EvaluateQuery("nosuchfn(1)").ok());
  EXPECT_FALSE(
      evaluator_->EvaluateQuery("doc(\"missing.xml\")/a/b").ok());
  EXPECT_FALSE(evaluator_->EvaluateQuery("tstart(\"not a node\")").ok());
}

}  // namespace
}  // namespace archis::xquery
