// Tests for compress/: zlib helpers, BlockZIP (Algorithm 2) and the
// block-pruned BlobStore.
#include <gtest/gtest.h>

#include <random>

#include "compress/blob_store.h"

namespace archis::compress {
namespace {

std::vector<std::string> MakeRecords(size_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<std::string> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // H-table-ish records: id, value, two dates — repetitive, compressible.
    records.push_back("id=" + std::to_string(100000 + i) + "|salary=" +
                      std::to_string(30000 + rng() % 60000) +
                      "|tstart=1995-01-01|tend=1996-01-01");
  }
  return records;
}

TEST(ZlibTest, RoundTrip) {
  std::string input(10000, 'a');
  for (size_t i = 0; i < input.size(); i += 7) input[i] = 'b';
  auto z = ZlibCompress(input);
  ASSERT_TRUE(z.ok());
  EXPECT_LT(z->size(), input.size() / 4);
  auto back = ZlibUncompress(*z, input.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, input);
  // Also without a size hint (growth loop).
  auto back2 = ZlibUncompress(*z);
  ASSERT_TRUE(back2.ok());
  EXPECT_EQ(*back2, input);
}

TEST(ZlibTest, UncompressRejectsGarbage) {
  EXPECT_FALSE(ZlibUncompress("definitely not zlib data").ok());
}

TEST(BlockZipTest, RoundTripsAllRecords) {
  auto records = MakeRecords(5000, 42);
  auto blocks = BlockZipCompress(records);
  ASSERT_TRUE(blocks.ok());
  ASSERT_GT(blocks->size(), 1u);
  std::vector<std::string> recovered;
  for (const CompressedBlock& b : *blocks) {
    auto part = BlockZipUncompress(b);
    ASSERT_TRUE(part.ok());
    recovered.insert(recovered.end(), part->begin(), part->end());
  }
  EXPECT_EQ(recovered, records);
}

TEST(BlockZipTest, BlocksTargetConfiguredSize) {
  auto records = MakeRecords(5000, 7);
  BlockZipOptions opts;
  opts.block_size = 4000;  // the paper's BLOB size
  auto blocks = BlockZipCompress(records, opts);
  ASSERT_TRUE(blocks.ok());
  // All but possibly the last block stay under the target and reasonably
  // close to it (Algorithm 2's grow/shrink loop).
  for (size_t i = 0; i + 1 < blocks->size(); ++i) {
    EXPECT_LE((*blocks)[i].data.size(), opts.block_size);
    EXPECT_GE((*blocks)[i].data.size(), opts.block_size / 4)
        << "block " << i << " badly underfilled";
  }
  // Ranges partition the record space.
  uint64_t next = 0;
  for (const CompressedBlock& b : *blocks) {
    EXPECT_EQ(b.first_record, next);
    next = b.last_record + 1;
  }
  EXPECT_EQ(next, records.size());
}

TEST(BlockZipTest, CompressionActuallyShrinks) {
  auto records = MakeRecords(5000, 3);
  uint64_t raw = 0;
  for (const auto& r : records) raw += r.size();
  auto blocks = BlockZipCompress(records);
  ASSERT_TRUE(blocks.ok());
  EXPECT_LT(TotalCompressedBytes(*blocks), raw / 3);
}

TEST(BlockZipTest, HandlesEmptyAndSingleRecord) {
  auto empty = BlockZipCompress({});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  auto one = BlockZipCompress({"lonely"});
  ASSERT_TRUE(one.ok());
  ASSERT_EQ(one->size(), 1u);
  auto back = BlockZipUncompress((*one)[0]);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)[0], "lonely");
}

TEST(BlockZipTest, OversizedRecordGetsOwnBlock) {
  std::mt19937 rng(5);
  std::string incompressible(20000, '\0');
  for (char& c : incompressible) c = static_cast<char>(rng());
  auto blocks = BlockZipCompress({"small", incompressible, "tiny"});
  ASSERT_TRUE(blocks.ok());
  std::vector<std::string> recovered;
  for (const auto& b : *blocks) {
    auto part = BlockZipUncompress(b);
    ASSERT_TRUE(part.ok());
    recovered.insert(recovered.end(), part->begin(), part->end());
  }
  ASSERT_EQ(recovered.size(), 3u);
  EXPECT_EQ(recovered[1], incompressible);
}

class BlobStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<std::pair<int64_t, std::string>> records;
    for (int64_t sid = 0; sid < 4000; ++sid) {
      records.emplace_back(sid, "record-for-sid-" + std::to_string(sid) +
                                    "-with-some-padding-xxxxxxxxxxxx");
    }
    ASSERT_TRUE(store_.Build(records).ok());
    ASSERT_GT(store_.block_count(), 3u);
  }

  BlobStore store_;
};

TEST_F(BlobStoreTest, RangeScanReturnsExactRows) {
  std::vector<int64_t> sids;
  ASSERT_TRUE(store_.ScanRange(100, 110, [&](int64_t sid,
                                             const std::string& rec) {
    sids.push_back(sid);
    EXPECT_EQ(rec, "record-for-sid-" + std::to_string(sid) +
                       "-with-some-padding-xxxxxxxxxxxx");
    return true;
  }).ok());
  ASSERT_EQ(sids.size(), 11u);
  EXPECT_EQ(sids.front(), 100);
  EXPECT_EQ(sids.back(), 110);
}

TEST_F(BlobStoreTest, NarrowRangeDecompressesFewBlocks) {
  // The point of BlockZIP (Section 8.1): "if we know which blocks to
  // access, we only need to read and uncompress those specific blocks".
  BlobReadStats stats;
  ASSERT_TRUE(store_.ScanRange(2000, 2001,
                               [](int64_t, const std::string&) {
    return true;
  }, &stats).ok());
  EXPECT_LE(stats.blocks_decompressed, 2u);
  EXPECT_EQ(stats.blocks_scanned, store_.block_count());

  BlobReadStats full;
  ASSERT_TRUE(store_.ScanAll([](int64_t, const std::string&) {
    return true;
  }, &full).ok());
  EXPECT_EQ(full.blocks_decompressed, store_.block_count());
  EXPECT_GT(full.blocks_decompressed, stats.blocks_decompressed * 2);
}

TEST_F(BlobStoreTest, MetadataRangesAreOrderedAndTight) {
  int64_t prev_end = -1;
  for (const BlobBlockMeta& m : store_.metadata()) {
    EXPECT_GT(m.start_sid, prev_end);
    EXPECT_LE(m.start_sid, m.end_sid);
    prev_end = m.end_sid;
  }
}

TEST(BlobStoreValidation, RejectsUnsortedInput) {
  BlobStore store;
  EXPECT_EQ(store.Build({{5, "a"}, {3, "b"}}).code(),
            StatusCode::kInvalidArgument);
}

TEST(BlobStoreValidation, DuplicateSidsAllowed) {
  // Versions of the same id share a sid inside one segment.
  BlobStore store;
  ASSERT_TRUE(store.Build({{1, "v1"}, {1, "v2"}, {2, "v3"}}).ok());
  int hits = 0;
  ASSERT_TRUE(store.ScanRange(1, 1, [&](int64_t, const std::string&) {
    ++hits;
    return true;
  }).ok());
  EXPECT_EQ(hits, 2);
}

TEST(BlobStoreValidation, CorruptedBlockSurfacesAsError) {
  // Failure injection: flip bytes inside a compressed block and verify the
  // reader reports Corruption instead of returning garbage.
  auto blocks = BlockZipCompress({"alpha", "beta", "gamma", "delta"});
  ASSERT_TRUE(blocks.ok());
  ASSERT_FALSE(blocks->empty());
  CompressedBlock mangled = (*blocks)[0];
  for (size_t i = 4; i < mangled.data.size(); i += 3) {
    mangled.data[i] = static_cast<char>(~mangled.data[i]);
  }
  auto result = BlockZipUncompress(mangled);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(BlobStoreValidation, TruncatedBlockSurfacesAsError) {
  auto blocks = BlockZipCompress({"some", "records", "here"});
  ASSERT_TRUE(blocks.ok());
  CompressedBlock truncated = (*blocks)[0];
  truncated.data.resize(truncated.data.size() / 2);
  EXPECT_FALSE(BlockZipUncompress(truncated).ok());
}

TEST(BlobStoreValidation, CompressionRatioReported) {
  auto records = MakeRecords(3000, 11);
  std::vector<std::pair<int64_t, std::string>> input;
  int64_t sid = 0;
  for (auto& r : records) input.emplace_back(sid++, std::move(r));
  BlobStore store;
  ASSERT_TRUE(store.Build(input).ok());
  EXPECT_GT(store.RawBytes(), store.CompressedBytes() * 2);
}

}  // namespace
}  // namespace archis::compress
