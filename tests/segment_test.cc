// Tests for the usefulness-based segment clustering (paper Section 6):
// freeze mechanics, pruning, cross-segment deduplication, the Eq. 3 storage
// bound, and equivalence between segmented / unsegmented / compressed
// configurations.
#include <gtest/gtest.h>

#include <map>
#include <random>

#include "archis/segment_manager.h"

namespace archis::core {
namespace {

using minirel::DataType;
using minirel::Schema;
using minirel::Tuple;
using minirel::Value;

Date D(int y, int m, int d) { return Date::FromYmd(y, m, d); }

Schema SalarySchema() {
  return Schema({{"id", DataType::kInt64},
                 {"salary", DataType::kInt64},
                 {"tstart", DataType::kDate},
                 {"tend", DataType::kDate}});
}

std::unique_ptr<SegmentedStore> MakeStore(minirel::Database* db,
                                          SegmentOptions opts,
                                          const std::string& name = "sal") {
  auto store =
      SegmentedStore::Create(db, name, SalarySchema(), opts, D(1990, 1, 1));
  EXPECT_TRUE(store.ok());
  return std::move(*store);
}

TEST(SegmentedStoreTest, UsefulnessDecaysWithClosesAndTriggersFreeze) {
  minirel::Database db;
  SegmentOptions opts;
  opts.umin = 0.5;
  auto store = MakeStore(&db, opts);
  Date day = D(1990, 1, 1);
  for (int64_t id = 1; id <= 10; ++id) {
    ASSERT_TRUE(store->InsertVersion(id, {Value(int64_t{1000 * id})}, day)
                    .ok());
  }
  EXPECT_DOUBLE_EQ(store->Usefulness(), 1.0);
  // Update 6 of the 10: each update closes one version and inserts a new
  // one, keeping usefulness above 0.5 until enough dead versions pile up.
  for (int64_t id = 1; id <= 6; ++id) {
    day = day.AddDays(30);
    ASSERT_TRUE(store->CloseVersion(id, day).ok());
    ASSERT_TRUE(store->InsertVersion(id, {Value(int64_t{2000 * id})}, day)
                    .ok());
  }
  // 16 tuples, 10 live -> U = 0.625; close more without replacing.
  ASSERT_TRUE(store->CloseVersion(7, day.AddDays(1)).ok());
  ASSERT_TRUE(store->CloseVersion(8, day.AddDays(2)).ok());
  // Now 16 tuples, 8 live -> U = 0.5; one more close crosses U_min.
  ASSERT_TRUE(store->CloseVersion(9, day.AddDays(3)).ok());
  ASSERT_EQ(store->segments().size(), 1u);
  // New live segment holds exactly the live tuples.
  EXPECT_EQ(store->live_total(), store->live_current());
  EXPECT_EQ(store->live_current(), 7u);  // 10 - 3 closed-without-replace
}

TEST(SegmentedStoreTest, DisabledModeNeverFreezes) {
  minirel::Database db;
  SegmentOptions opts;
  opts.enabled = false;
  auto store = MakeStore(&db, opts);
  Date day = D(1990, 1, 1);
  ASSERT_TRUE(store->InsertVersion(1, {Value(int64_t{100})}, day).ok());
  for (int i = 0; i < 50; ++i) {
    day = day.AddDays(10);
    ASSERT_TRUE(store->CloseVersion(1, day).ok());
    ASSERT_TRUE(store->InsertVersion(1, {Value(int64_t{100 + i})}, day).ok());
  }
  EXPECT_TRUE(store->segments().empty());
  EXPECT_EQ(store->LogicalTuples(), 51u);
}

TEST(SegmentedStoreTest, SameDayReplaceRewritesInPlace) {
  // Closing a version born today and inserting its successor would mint two
  // versions sharing (id, tstart) — the key the multi-source scan dedup
  // collapses. ReplaceVersion must rewrite the open version in place
  // instead, so history output is freeze-state independent.
  minirel::Database db;
  SegmentOptions opts;
  opts.umin = 0.5;
  auto store = MakeStore(&db, opts);
  Date day = D(1990, 1, 1);
  ASSERT_TRUE(store->InsertVersion(1, {Value(int64_t{100})}, day).ok());
  ASSERT_TRUE(store->ReplaceVersion(1, {Value(int64_t{150})}, day).ok());
  ASSERT_TRUE(store->ReplaceVersion(1, {Value(int64_t{175})}, day).ok());
  std::vector<Tuple> rows;
  ASSERT_TRUE(store->ScanHistory([&](const Tuple& row) {
                rows.push_back(row);
                return true;
              }).ok());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at(1).AsInt(), 175);
  EXPECT_EQ(rows[0].at(2).AsDate(), day);
  EXPECT_TRUE(rows[0].at(3).AsDate().IsForever());

  // A next-day replace takes the regular close + insert path.
  ASSERT_TRUE(
      store->ReplaceVersion(1, {Value(int64_t{200})}, day.AddDays(1)).ok());
  rows.clear();
  ASSERT_TRUE(store->ScanHistory([&](const Tuple& row) {
                rows.push_back(row);
                return true;
              }).ok());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].at(1).AsInt(), 175);
  EXPECT_EQ(rows[0].at(3).AsDate(), day);
  EXPECT_EQ(rows[1].at(1).AsInt(), 200);
  EXPECT_EQ(rows[1].at(2).AsDate(), day.AddDays(1));
  EXPECT_EQ(store->ReplaceVersion(99, {Value(int64_t{1})}, day).code(),
            StatusCode::kNotFound);
}

TEST(SegmentedStoreTest, SameDayReplaceShadowsFrozenCopy) {
  // The open version gets frozen (copied into a segment), then replaced on
  // its birth day: the live rewrite must shadow the stale frozen copy in
  // multi-source scans rather than surface both values.
  minirel::Database db;
  SegmentOptions opts;
  opts.umin = 0.5;
  auto store = MakeStore(&db, opts);
  Date day = D(1990, 1, 1);
  for (int64_t id = 1; id <= 4; ++id) {
    ASSERT_TRUE(store->InsertVersion(id, {Value(100 * id)}, day).ok());
  }
  day = day.AddDays(5);
  ASSERT_TRUE(store->InsertVersion(5, {Value(int64_t{500})}, day).ok());
  // Close ids 1-3 without replacement to push U below 0.5 and force a
  // freeze; the frozen segment captures id 5's open version (value 500).
  for (int64_t id = 1; id <= 3; ++id) {
    ASSERT_TRUE(store->CloseVersion(id, day).ok());
  }
  ASSERT_GE(store->segments().size(), 1u);
  ASSERT_TRUE(store->ReplaceVersion(5, {Value(int64_t{550})}, day).ok());
  std::map<int64_t, std::vector<int64_t>> by_id;
  ASSERT_TRUE(store->ScanHistory([&](const Tuple& row) {
                by_id[row.at(0).AsInt()].push_back(row.at(1).AsInt());
                return true;
              }).ok());
  ASSERT_EQ(by_id[5].size(), 1u);
  EXPECT_EQ(by_id[5][0], 550);
}

TEST(SegmentedStoreTest, CloseVersionErrorsWithoutLiveRow) {
  minirel::Database db;
  auto store = MakeStore(&db, SegmentOptions{});
  EXPECT_EQ(store->CloseVersion(99, D(1991, 1, 1)).code(),
            StatusCode::kNotFound);
}

TEST(SegmentedStoreTest, SegmentInvariantsHold) {
  minirel::Database db;
  SegmentOptions opts;
  opts.umin = 0.6;
  auto store = MakeStore(&db, opts);
  std::mt19937 rng(99);
  Date day = D(1990, 1, 1);
  for (int64_t id = 1; id <= 20; ++id) {
    ASSERT_TRUE(store->InsertVersion(id, {Value(int64_t{id})}, day).ok());
  }
  for (int step = 0; step < 300; ++step) {
    day = day.AddDays(1 + static_cast<int64_t>(rng() % 5));
    int64_t id = 1 + static_cast<int64_t>(rng() % 20);
    Status st = store->CloseVersion(id, day);
    if (st.ok()) {
      ASSERT_TRUE(
          store->InsertVersion(id, {Value(int64_t{step})}, day).ok());
    }
  }
  ASSERT_GE(store->segments().size(), 2u);
  // Frozen segment intervals are ordered and contiguous-ish; every segment
  // has tuples satisfying the pruning conditions (1) and (2) of Section 6.1.
  Date prev_end = D(1900, 1, 1);
  for (const SegmentInfo& seg : store->segments()) {
    EXPECT_LE(prev_end, seg.interval.tstart);
    EXPECT_LE(seg.interval.tstart, seg.interval.tend);
    prev_end = seg.interval.tend;
    EXPECT_GT(seg.tuple_count, 0u);
  }
}

// Equation 3: N_seg / N_noseg <= 1 / (1 - U_min).
class StorageBoundProperty : public ::testing::TestWithParam<double> {};

TEST_P(StorageBoundProperty, Equation3HoldsAfterHeavyUpdates) {
  const double umin = GetParam();
  minirel::Database db;
  SegmentOptions opts;
  opts.umin = umin;
  auto store = MakeStore(&db, opts);
  std::mt19937 rng(7);
  Date day = D(1990, 1, 1);
  const int64_t kIds = 50;
  for (int64_t id = 1; id <= kIds; ++id) {
    ASSERT_TRUE(store->InsertVersion(id, {Value(id)}, day).ok());
  }
  for (int step = 0; step < 2000; ++step) {
    day = day.AddDays(1);
    int64_t id = 1 + static_cast<int64_t>(rng() % kIds);
    if (store->CloseVersion(id, day).ok()) {
      ASSERT_TRUE(store->InsertVersion(id, {Value(int64_t{step})}, day).ok());
    }
  }
  const double n_noseg = static_cast<double>(store->LogicalTuples());
  const double n_seg = static_cast<double>(store->TotalTuples());
  // Paper Eq. 3 bounds the *archived* blowup; the live segment adds at most
  // one more copy of the live tuples, so compare against the bound plus
  // that slack.
  const double bound = 1.0 / (1.0 - umin);
  EXPECT_LE(n_seg / n_noseg, bound + 1.0)
      << "umin=" << umin << " n_seg=" << n_seg << " n_noseg=" << n_noseg;
  // And segmentation really does duplicate (sanity that the test bites).
  if (!store->segments().empty()) EXPECT_GT(n_seg, n_noseg);
}

INSTANTIATE_TEST_SUITE_P(UminSweep, StorageBoundProperty,
                         ::testing::Values(0.2, 0.26, 0.36, 0.4));

// Cross-configuration equivalence: the same update stream must yield the
// same query answers with clustering on, off, and compressed (paper
// Sections 6-8 change the layout, never the semantics).
class EquivalenceProperty : public ::testing::TestWithParam<uint32_t> {
 protected:
  struct Version {
    int64_t id;
    int64_t salary;
    TimeInterval iv;
  };

  static std::vector<Version> Reference(const SegmentedStore& store) {
    std::vector<Version> out;
    Status st = store.ScanHistory([&](const Tuple& row) {
      out.push_back({row.at(0).AsInt(), row.at(1).AsInt(),
                     TimeInterval(row.at(2).AsDate(), row.at(3).AsDate())});
      return true;
    });
    EXPECT_TRUE(st.ok());
    return out;
  }
};

TEST_P(EquivalenceProperty, AllConfigurationsAgree) {
  std::mt19937 rng(GetParam());
  // Three configurations fed the identical stream.
  minirel::Database db1, db2, db3;
  SegmentOptions seg_on;
  seg_on.umin = 0.4;
  SegmentOptions seg_off;
  seg_off.enabled = false;
  SegmentOptions seg_zip;
  seg_zip.umin = 0.4;
  seg_zip.compress = true;
  auto a = MakeStore(&db1, seg_on, "a");
  auto b = MakeStore(&db2, seg_off, "b");
  auto c = MakeStore(&db3, seg_zip, "c");

  Date day = D(1990, 1, 1);
  const int64_t kIds = 30;
  for (int64_t id = 1; id <= kIds; ++id) {
    for (auto* s : {a.get(), b.get(), c.get()}) {
      ASSERT_TRUE(s->InsertVersion(id, {Value(id * 10)}, day).ok());
    }
  }
  for (int step = 0; step < 600; ++step) {
    day = day.AddDays(1 + static_cast<int64_t>(rng() % 3));
    int64_t id = 1 + static_cast<int64_t>(rng() % kIds);
    int64_t salary = 1000 + static_cast<int64_t>(rng() % 9000);
    for (auto* s : {a.get(), b.get(), c.get()}) {
      if (s->CloseVersion(id, day).ok()) {
        ASSERT_TRUE(s->InsertVersion(id, {Value(salary)}, day).ok());
      }
    }
  }

  auto ra = Reference(*a);
  auto rb = Reference(*b);
  auto rc = Reference(*c);
  auto key = [](const Version& v) {
    return std::make_tuple(v.id, v.iv.tstart.days(), v.iv.tend.days(),
                           v.salary);
  };
  auto normalize = [&](std::vector<Version> v) {
    std::vector<std::tuple<int64_t, int64_t, int64_t, int64_t>> out;
    for (const auto& x : v) out.push_back(key(x));
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(normalize(ra), normalize(rb));
  EXPECT_EQ(normalize(ra), normalize(rc));

  // Snapshot equivalence at sampled dates.
  for (int probe = 0; probe < 12; ++probe) {
    Date t = D(1990, 1, 1).AddDays(static_cast<int64_t>(rng() % 900));
    std::map<int64_t, int64_t> sa, sb, sc;
    auto collect = [&](SegmentedStore* s, std::map<int64_t, int64_t>* out) {
      ASSERT_TRUE(s->ScanSnapshot(t, [&](const Tuple& row) {
        (*out)[row.at(0).AsInt()] = row.at(1).AsInt();
        return true;
      }).ok());
    };
    collect(a.get(), &sa);
    collect(b.get(), &sb);
    collect(c.get(), &sc);
    EXPECT_EQ(sa, sb) << "snapshot at " << t.ToString();
    EXPECT_EQ(sa, sc) << "snapshot at " << t.ToString();
  }

  // Single-object history equivalence.
  for (int64_t id = 1; id <= kIds; id += 7) {
    std::vector<int64_t> ha, hb, hc;
    auto collect = [&](SegmentedStore* s, std::vector<int64_t>* out) {
      ASSERT_TRUE(s->ScanId(id, [&](const Tuple& row) {
        out->push_back(row.at(1).AsInt());
        return true;
      }).ok());
    };
    collect(a.get(), &ha);
    collect(b.get(), &hb);
    collect(c.get(), &hc);
    EXPECT_EQ(ha, hb);
    EXPECT_EQ(ha, hc);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceProperty,
                         ::testing::Values(101u, 202u, 303u));

TEST(SegmentedStoreTest, SnapshotPrunesToOneSegment) {
  minirel::Database db;
  SegmentOptions opts;
  opts.umin = 0.5;
  auto store = MakeStore(&db, opts);
  Date day = D(1990, 1, 1);
  for (int64_t id = 1; id <= 10; ++id) {
    ASSERT_TRUE(store->InsertVersion(id, {Value(id)}, day).ok());
  }
  std::mt19937 rng(1);
  for (int step = 0; step < 200; ++step) {
    day = day.AddDays(3);
    int64_t id = 1 + static_cast<int64_t>(rng() % 10);
    if (store->CloseVersion(id, day).ok()) {
      ASSERT_TRUE(store->InsertVersion(id, {Value(int64_t{step})}, day).ok());
    }
  }
  ASSERT_GE(store->segments().size(), 2u);
  StoreScanStats stats;
  ASSERT_TRUE(store->ScanSnapshot(D(1990, 3, 1), [](const Tuple&) {
    return true;
  }, &stats).ok());
  EXPECT_EQ(stats.segments_scanned, 1u);  // exactly one covering segment
  EXPECT_GT(stats.segments_considered, 2u);
}

TEST(SegmentedStoreTest, CompressedSegmentsPruneBlocksForPointLookups) {
  minirel::Database db;
  SegmentOptions opts;
  opts.umin = 0.5;
  opts.compress = true;
  opts.block_size = 512;  // small blocks so pruning is observable
  auto store = MakeStore(&db, opts);
  Date day = D(1990, 1, 1);
  for (int64_t id = 1; id <= 200; ++id) {
    ASSERT_TRUE(store->InsertVersion(id, {Value(id)}, day).ok());
  }
  // Close half (no reinserts) to force a freeze.
  for (int64_t id = 1; id <= 120; ++id) {
    day = day.AddDays(1);
    ASSERT_TRUE(store->CloseVersion(id, day).ok());
  }
  ASSERT_GE(store->segments().size(), 1u);
  EXPECT_TRUE(store->segments()[0].compressed);
  StoreScanStats point, full;
  ASSERT_TRUE(store->ScanId(5, [](const Tuple&) { return true; }, &point)
                  .ok());
  ASSERT_TRUE(store->ScanHistory([](const Tuple&) { return true; }, &full)
                  .ok());
  EXPECT_LT(point.blocks_decompressed, full.blocks_decompressed);
}

}  // namespace
}  // namespace archis::core
