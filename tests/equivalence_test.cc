// Cross-path equivalence: the translated SQL/XML path and the native
// XQuery path must produce identical answers on generated workload data,
// across a parameterized family of snapshot, slicing, projection and
// current-tense queries. This is the end-to-end correctness argument for
// Algorithm 1.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <set>

#include "workload/employee_workload.h"

namespace archis::core {
namespace {

using workload::EmployeeWorkload;
using workload::WorkloadConfig;

/// Physical-plan pin for the whole suite, from ARCHIS_FORCE_PLAN:
/// "fixed" runs every translated query on the pre-planner executor shape,
/// "cost" makes planner failures hard errors. scripts/check.sh runs the
/// suite under both values, so a planner bug cannot hide behind the
/// kAuto fallback.
PlanForce ForcedPlan() {
  const char* v = std::getenv("ARCHIS_FORCE_PLAN");
  if (v == nullptr) return PlanForce::kAuto;
  if (std::strcmp(v, "fixed") == 0) return PlanForce::kFixed;
  if (std::strcmp(v, "cost") == 0) return PlanForce::kCostBased;
  ADD_FAILURE() << "unknown ARCHIS_FORCE_PLAN value: " << v;
  return PlanForce::kAuto;
}

class TranslationEquivalence : public ::testing::TestWithParam<int> {
 public:
  static ArchIS* Db() {
    static std::unique_ptr<ArchIS> db = [] {
      ArchISOptions opts;
      opts.segment.umin = 0.4;
      auto d = std::make_unique<ArchIS>(opts, Date::FromYmd(1985, 1, 1));
      WorkloadConfig cfg;
      cfg.initial_employees = 50;
      cfg.years = 8;
      EmployeeWorkload wl(cfg);
      auto st = wl.Generate(d.get());
      EXPECT_TRUE(st.ok());
      probe_id_ = wl.probe_id();
      return d;
    }();
    return db.get();
  }

  /// Runs `query` on both paths; returns the multiset of (string value,
  /// tstart) pairs of the result nodes. The translated side is pinned with
  /// QueryForce::kTranslated, so a translator coverage regression fails
  /// loudly instead of silently comparing native against native.
  static std::multiset<std::pair<std::string, std::string>> RunBoth(
      const std::string& query, bool* translated) {
    auto result =
        Db()->Query(query, QueryOptions{.force_path = QueryForce::kTranslated,
                                        .force_plan = ForcedPlan()});
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    *translated = result.ok() &&
                  result->path == QueryPath::kTranslated;
    std::multiset<std::pair<std::string, std::string>> via_plan;
    if (result.ok()) {
      for (const auto& child : result->xml->ChildElements()) {
        via_plan.emplace(child->StringValue(),
                         child->Attr("tstart").value_or(""));
      }
    }
    auto native = Db()->QueryNative(query);
    EXPECT_TRUE(native.ok()) << native.status().ToString();
    std::multiset<std::pair<std::string, std::string>> via_native;
    if (native.ok()) {
      for (const auto& item : *native) {
        if (item.is_node()) {
          via_native.emplace(item.node()->StringValue(),
                             item.node()->Attr("tstart").value_or(""));
        } else {
          via_native.emplace(item.StringValue(), "");
        }
      }
    }
    EXPECT_EQ(via_plan, via_native) << query;
    return via_plan;
  }

  static int64_t probe_id_;
};

int64_t TranslationEquivalence::probe_id_ = 0;

TEST_P(TranslationEquivalence, SnapshotQueriesAgree) {
  Date t = Date::FromYmd(1985 + GetParam(), 7, 1);
  char q[512];
  std::snprintf(q, sizeof(q),
                "for $s in doc(\"employees.xml\")/employees/employee/salary"
                "[tstart(.) <= xs:date(\"%s\") and "
                "tend(.) >= xs:date(\"%s\")] return $s",
                t.ToString().c_str(), t.ToString().c_str());
  bool translated = false;
  auto rows = RunBoth(q, &translated);
  EXPECT_TRUE(translated);
  if (GetParam() >= 1) {
    EXPECT_FALSE(rows.empty());
  }
}

TEST_P(TranslationEquivalence, SlicingQueriesAgree) {
  Date a = Date::FromYmd(1985 + GetParam(), 3, 1);
  Date b = a.AddDays(200);
  char q[512];
  std::snprintf(q, sizeof(q),
                "for $e in doc(\"employees.xml\")/employees/employee"
                "[toverlaps(., telement(xs:date(\"%s\"), xs:date(\"%s\")))]"
                " return $e/name",
                a.ToString().c_str(), b.ToString().c_str());
  bool translated = false;
  RunBoth(q, &translated);
  EXPECT_TRUE(translated);
}

TEST_P(TranslationEquivalence, ValuePredicateProjectionAgrees) {
  // Different titles per parameter exercise different selectivities.
  static const char* kTitles[] = {"Engineer", "Sr Engineer", "Manager",
                                  "Analyst", "Architect", "TechLeader",
                                  "Staff Engineer", "Sr Analyst"};
  char q[512];
  std::snprintf(q, sizeof(q),
                "for $t in doc(\"employees.xml\")/employees/"
                "employee[title=\"%s\"]/salary return $t",
                kTitles[GetParam() % 8]);
  bool translated = false;
  RunBoth(q, &translated);
  EXPECT_TRUE(translated);
}

TEST_P(TranslationEquivalence, SingleObjectHistoryAgrees) {
  char q[256];
  std::snprintf(q, sizeof(q),
                "for $s in doc(\"employees.xml\")/employees/"
                "employee[id=%lld]/salary return $s",
                static_cast<long long>(probe_id_ + GetParam()));
  bool translated = false;
  RunBoth(q, &translated);
  EXPECT_TRUE(translated);
}

INSTANTIATE_TEST_SUITE_P(YearSweep, TranslationEquivalence,
                         ::testing::Range(0, 8));

TEST(TranslationEquivalenceMisc, CurrentTenseQueryAgrees) {
  ArchIS* db = TranslationEquivalence::Db();
  const std::string q =
      "for $e in doc(\"employees.xml\")/employees/employee "
      "let $m := $e/title[tend(.)=current-date()] "
      "where not empty($m) return $e/id";
  auto result =
      db->Query(q, QueryOptions{.force_path = QueryForce::kTranslated,
                                .force_plan = ForcedPlan()});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->path, QueryPath::kTranslated);
  // kNative skips the translator entirely and evaluates over the
  // published H-documents.
  auto native = db->Query(q, QueryOptions{.force_path = QueryForce::kNative});
  ASSERT_TRUE(native.ok());
  EXPECT_EQ(native->path, QueryPath::kNativeFallback);
  // Current employees must match the current table row count.
  auto table = db->current_db().catalog().GetTable("employees");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(result->xml->ChildElements().size(), (*table)->RowCount());
  EXPECT_EQ(native->xml->ChildElements().size(), (*table)->RowCount());
}

TEST(TranslationEquivalenceMisc, TavgAgreesWithNative) {
  ArchIS* db = TranslationEquivalence::Db();
  const std::string q =
      "let $s := doc(\"employees.xml\")/employees/employee/salary "
      "return tavg($s)";
  auto result = db->Query(q, QueryOptions{.force_plan = ForcedPlan()});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->path, QueryPath::kTranslated);
  auto native = db->QueryNative(q);
  ASSERT_TRUE(native.ok());
  auto steps = result->xml->ChildrenNamed("tavg");
  ASSERT_EQ(steps.size(), native->size());
  for (size_t i = 0; i < steps.size(); ++i) {
    EXPECT_EQ(steps[i]->StringValue(),
              (*native)[i].node()->StringValue());
    EXPECT_EQ(*steps[i]->Attr("tstart"),
              *(*native)[i].node()->Attr("tstart"));
  }
}

}  // namespace
}  // namespace archis::core
