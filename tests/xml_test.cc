// Unit tests for xml/: DOM, parser, serializer.
#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xml/serializer.h"

namespace archis::xml {
namespace {

TEST(NodeTest, ElementConstruction) {
  auto emp = XmlNode::Element("employee");
  emp->SetAttr("tstart", "1995-01-01");
  emp->SetAttr("tend", "9999-12-31");
  emp->AppendText("Bob");
  EXPECT_TRUE(emp->is_element());
  EXPECT_EQ(emp->name(), "employee");
  EXPECT_EQ(*emp->Attr("tstart"), "1995-01-01");
  EXPECT_FALSE(emp->Attr("missing").has_value());
  EXPECT_EQ(emp->StringValue(), "Bob");
}

TEST(NodeTest, SetAttrReplacesExisting) {
  auto e = XmlNode::Element("x");
  e->SetAttr("a", "1");
  e->SetAttr("a", "2");
  EXPECT_EQ(e->attrs().size(), 1u);
  EXPECT_EQ(*e->Attr("a"), "2");
}

TEST(NodeTest, IntervalAccessors) {
  auto e = XmlNode::Element("salary");
  e->SetInterval(TimeInterval(Date::FromYmd(1995, 1, 1), Date::Forever()));
  auto iv = e->Interval();
  ASSERT_TRUE(iv.ok());
  EXPECT_TRUE(iv->is_current());
  auto bare = XmlNode::Element("bare");
  EXPECT_EQ(bare->Interval().status().code(), StatusCode::kNotFound);
}

TEST(NodeTest, NavigationAndParentLinks) {
  auto root = XmlNode::Element("employees");
  auto child = XmlNode::Element("employee");
  root->AppendChild(child);
  root->AppendChild(XmlNode::Element("employee"));
  root->AppendChild(XmlNode::Element("other"));
  EXPECT_EQ(root->ChildrenNamed("employee").size(), 2u);
  EXPECT_EQ(root->FirstChildNamed("other")->name(), "other");
  EXPECT_EQ(root->FirstChildNamed("nope"), nullptr);
  EXPECT_EQ(child->parent().get(), root.get());
  EXPECT_EQ(root->CountElements(), 4u);
}

TEST(NodeTest, CloneIsDeepAndDetached) {
  auto root = XmlNode::Element("a");
  auto b = XmlNode::Element("b");
  b->AppendText("text");
  root->AppendChild(b);
  auto copy = root->Clone();
  EXPECT_EQ(copy->CountElements(), 2u);
  EXPECT_EQ(copy->parent(), nullptr);
  // Mutating the copy leaves the original alone.
  copy->ChildElements()[0]->SetAttr("x", "1");
  EXPECT_FALSE(root->ChildElements()[0]->Attr("x").has_value());
}

TEST(ParserTest, ParsesPaperStyleHDocument) {
  const char* text = R"(<?xml version="1.0"?>
<!-- employees H-document -->
<employees tstart="1995-01-01" tend="9999-12-31">
  <employee tstart="1995-01-01" tend="9999-12-31">
    <id tstart="1995-01-01" tend="9999-12-31">1001</id>
    <name tstart="1995-01-01" tend="9999-12-31">Bob</name>
    <salary tstart="1995-01-01" tend="1995-05-31">60000</salary>
    <salary tstart="1995-06-01" tend="9999-12-31">70000</salary>
  </employee>
</employees>)";
  auto doc = ParseDocument(text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ((*doc)->name(), "employees");
  auto emp = (*doc)->FirstChildNamed("employee");
  ASSERT_NE(emp, nullptr);
  EXPECT_EQ(emp->ChildrenNamed("salary").size(), 2u);
  EXPECT_EQ(emp->FirstChildNamed("name")->StringValue(), "Bob");
}

TEST(ParserTest, HandlesSelfClosingCdataAndEntities) {
  auto doc = ParseDocument(
      "<r><empty/><c><![CDATA[1 < 2 & 3]]></c><e>a &amp; b</e></r>");
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE((*doc)->FirstChildNamed("empty")->children().empty());
  EXPECT_EQ((*doc)->FirstChildNamed("c")->StringValue(), "1 < 2 & 3");
  EXPECT_EQ((*doc)->FirstChildNamed("e")->StringValue(), "a & b");
}

TEST(ParserTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(ParseDocument("").ok());
  EXPECT_FALSE(ParseDocument("<a><b></a></b>").ok());
  EXPECT_FALSE(ParseDocument("<a>").ok());
  EXPECT_FALSE(ParseDocument("<a></a><b></b>").ok());
  EXPECT_FALSE(ParseDocument("<a x=noquote></a>").ok());
}

TEST(SerializerTest, RoundTripsThroughParser) {
  auto root = XmlNode::Element("depts");
  root->SetInterval(TimeInterval(Date::FromYmd(1992, 1, 1), Date::Forever()));
  auto dept = XmlNode::Element("dept");
  dept->SetAttr("deptno", "d02");
  auto mgr = XmlNode::Element("mgrno");
  mgr->SetInterval(
      TimeInterval(Date::FromYmd(1992, 1, 1), Date::FromYmd(1996, 12, 31)));
  mgr->AppendText("3402");
  dept->AppendChild(mgr);
  root->AppendChild(dept);

  std::string compact = Serialize(root);
  auto back = ParseDocument(compact);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(Serialize(*back), compact);

  SerializeOptions pretty;
  pretty.pretty = true;
  pretty.xml_declaration = true;
  std::string formatted = Serialize(root, pretty);
  EXPECT_NE(formatted.find("<?xml"), std::string::npos);
  auto back2 = ParseDocument(formatted);
  ASSERT_TRUE(back2.ok());
  EXPECT_EQ(Serialize(*back2), compact);
}

TEST(SerializerTest, EscapesSpecialCharacters) {
  auto e = XmlNode::Element("x");
  e->SetAttr("a", "<&>\"");
  e->AppendText("a<b&c");
  std::string out = Serialize(e);
  EXPECT_EQ(out.find('<', 1), out.find("</x>"));  // no raw '<' in content
  auto back = ParseDocument(out);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)->StringValue(), "a<b&c");
  EXPECT_EQ(*(*back)->Attr("a"), "<&>\"");
}

}  // namespace
}  // namespace archis::xml
