// Unit tests for common/: Status/Result, Date, TimeInterval, str_util.
#include <gtest/gtest.h>

#include <cstdio>

#include "common/date.h"
#include "common/interval.h"
#include "common/parse.h"
#include "common/status.h"
#include "common/str_util.h"

namespace archis {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing table");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.ToString(), "NotFound: missing table");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::IOError("disk gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> Doubled(Result<int> in) {
  ARCHIS_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_EQ(Doubled(Status::NotFound("x")).status().code(),
            StatusCode::kNotFound);
}

TEST(DateTest, RoundTripsYmd) {
  Date d = Date::FromYmd(1995, 6, 1);
  EXPECT_EQ(d.year(), 1995);
  EXPECT_EQ(d.month(), 6);
  EXPECT_EQ(d.day(), 1);
  EXPECT_EQ(d.ToString(), "1995-06-01");
}

TEST(DateTest, ParsesIsoAndUsFormats) {
  auto iso = Date::Parse("1995-06-01");
  ASSERT_TRUE(iso.ok());
  auto us = Date::Parse("06/01/1995");  // the paper's H-table sample format
  ASSERT_TRUE(us.ok());
  EXPECT_EQ(*iso, *us);
}

TEST(DateTest, RejectsGarbage) {
  EXPECT_FALSE(Date::Parse("not a date").ok());
  EXPECT_FALSE(Date::Parse("1995-13-01").ok());
  EXPECT_FALSE(Date::Parse("1995-01-42").ok());
}

TEST(DateTest, RejectsDaysPastTrueMonthLength) {
  // These used to normalise silently (2005-02-30 -> 2005-03-02); the
  // calendar validator now rejects them as ParseError.
  EXPECT_EQ(Date::Parse("2005-02-30").status().code(),
            StatusCode::kParseError);
  EXPECT_FALSE(Date::Parse("2005-04-31").ok());
  EXPECT_FALSE(Date::Parse("2005-02-29").ok());  // 2005 is not a leap year
  EXPECT_TRUE(Date::Parse("2004-02-29").ok());   // 2004 is
  EXPECT_FALSE(Date::Parse("1900-02-29").ok());  // century, not leap
  EXPECT_TRUE(Date::Parse("2000-02-29").ok());   // 400-year rule
  EXPECT_FALSE(Date::Parse("02/30/2005").ok());  // US format validated too
}

TEST(DateTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(Date::Parse("2005-01-01x").ok());
  EXPECT_FALSE(Date::Parse("2005-01-01 ").ok());
  EXPECT_FALSE(Date::Parse("06/01/1995junk").ok());
  EXPECT_TRUE(Date::Parse("2005-01-01").ok());
}

TEST(DateTest, DaysInMonthTable) {
  EXPECT_EQ(Date::DaysInMonth(1995, 1), 31);
  EXPECT_EQ(Date::DaysInMonth(1995, 2), 28);
  EXPECT_EQ(Date::DaysInMonth(1996, 2), 29);
  EXPECT_EQ(Date::DaysInMonth(1995, 4), 30);
  EXPECT_EQ(Date::DaysInMonth(1995, 0), 0);
  EXPECT_EQ(Date::DaysInMonth(1995, 13), 0);
}

class DateCalendarProperty : public ::testing::TestWithParam<int> {};

TEST_P(DateCalendarProperty, EveryValidDayRoundTripsAndOneDayPastFails) {
  const int year = GetParam();
  for (int month = 1; month <= 12; ++month) {
    const int len = Date::DaysInMonth(year, month);
    for (int day = 1; day <= len; ++day) {
      Date d = Date::FromYmd(year, month, day);
      auto parsed = Date::Parse(d.ToString());
      ASSERT_TRUE(parsed.ok()) << d.ToString();
      EXPECT_EQ(*parsed, d);
      EXPECT_EQ(parsed->year(), year);
      EXPECT_EQ(parsed->month(), month);
      EXPECT_EQ(parsed->day(), day);
    }
    // The first nonexistent day of each month must be rejected.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year, month, len + 1);
    EXPECT_FALSE(Date::Parse(buf).ok()) << buf;
  }
}

INSTANTIATE_TEST_SUITE_P(LeapAndCommonYears, DateCalendarProperty,
                         ::testing::Values(1900, 1995, 1996, 2000, 2004,
                                           2005));

TEST(DateTest, ForeverIsEndOfTime) {
  EXPECT_EQ(Date::Forever().ToString(), "9999-12-31");
  EXPECT_TRUE(Date::Forever().IsForever());
  EXPECT_FALSE(Date::FromYmd(2006, 1, 1).IsForever());
  // The sentinel orders after every real date — the property Section 4.3
  // relies on for index compatibility.
  EXPECT_LT(Date::FromYmd(9999, 12, 30), Date::Forever());
}

TEST(DateTest, ArithmeticCrossesMonthAndLeapBoundaries) {
  EXPECT_EQ(Date::FromYmd(1995, 1, 31).AddDays(1), Date::FromYmd(1995, 2, 1));
  EXPECT_EQ(Date::FromYmd(1996, 2, 28).AddDays(1),
            Date::FromYmd(1996, 2, 29));  // leap year
  EXPECT_EQ(Date::FromYmd(1995, 2, 28).AddDays(1), Date::FromYmd(1995, 3, 1));
  EXPECT_EQ(Date::FromYmd(1995, 12, 31).AddDays(1),
            Date::FromYmd(1996, 1, 1));
  EXPECT_EQ(Date::FromYmd(1996, 1, 1) - Date::FromYmd(1995, 1, 1), 365);
}

class DateRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(DateRoundTrip, ParseOfToStringIsIdentity) {
  Date d = Date::FromYmd(1985, 1, 1).AddDays(GetParam() * 97);
  auto parsed = Date::Parse(d.ToString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, d);
}

INSTANTIATE_TEST_SUITE_P(SweepTwentyYears, DateRoundTrip,
                         ::testing::Range(0, 80));

TEST(IntervalTest, ValidityAndDuration) {
  TimeInterval iv(Date::FromYmd(1995, 1, 1), Date::FromYmd(1995, 1, 10));
  EXPECT_TRUE(iv.valid());
  EXPECT_EQ(iv.duration_days(), 10);
  EXPECT_FALSE(TimeInterval(iv.tend, iv.tstart).valid());
}

TEST(IntervalTest, AllenPredicates) {
  TimeInterval a(Date::FromYmd(1995, 1, 1), Date::FromYmd(1995, 5, 31));
  TimeInterval b(Date::FromYmd(1995, 6, 1), Date::FromYmd(1995, 9, 30));
  TimeInterval c(Date::FromYmd(1995, 3, 1), Date::FromYmd(1995, 7, 1));
  EXPECT_TRUE(a.Meets(b));
  EXPECT_FALSE(b.Meets(a));
  EXPECT_TRUE(a.Precedes(b));
  EXPECT_TRUE(a.Overlaps(c));
  EXPECT_TRUE(c.Overlaps(b));
  EXPECT_FALSE(a.Overlaps(b));  // adjacent but disjoint (inclusive bounds)
  EXPECT_TRUE(TimeInterval(a.tstart, b.tend).Contains(c));
  EXPECT_TRUE(a.Equals(a));
}

TEST(IntervalTest, IntersectAndSpan) {
  TimeInterval a(Date::FromYmd(1995, 1, 1), Date::FromYmd(1995, 5, 31));
  TimeInterval c(Date::FromYmd(1995, 3, 1), Date::FromYmd(1995, 7, 1));
  auto meet = a.Intersect(c);
  ASSERT_TRUE(meet.has_value());
  EXPECT_EQ(meet->tstart, c.tstart);
  EXPECT_EQ(meet->tend, a.tend);
  EXPECT_FALSE(a.Intersect(TimeInterval(Date::FromYmd(1996, 1, 1),
                                        Date::FromYmd(1996, 2, 1)))
                   .has_value());
  TimeInterval span = a.Span(c);
  EXPECT_EQ(span.tstart, a.tstart);
  EXPECT_EQ(span.tend, c.tend);
}

TEST(IntervalTest, CurrentIntervalOverlapsEverythingAfterStart) {
  TimeInterval live(Date::FromYmd(1995, 1, 1), Date::Forever());
  EXPECT_TRUE(live.is_current());
  EXPECT_TRUE(live.Overlaps(
      TimeInterval(Date::FromYmd(2030, 1, 1), Date::FromYmd(2031, 1, 1))));
  EXPECT_FALSE(live.Overlaps(
      TimeInterval(Date::FromYmd(1990, 1, 1), Date::FromYmd(1994, 1, 1))));
}

TEST(StrUtilTest, SplitJoinTrim) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join(parts, "|"), "a|b||c");
  EXPECT_EQ(Trim("  x y \t\n"), "x y");
  EXPECT_EQ(Trim(""), "");
}

TEST(StrUtilTest, PrefixSuffixCase) {
  EXPECT_TRUE(StartsWith("employee_salary", "employee"));
  EXPECT_FALSE(StartsWith("emp", "employee"));
  EXPECT_TRUE(EndsWith("employees.xml", ".xml"));
  EXPECT_EQ(ToLower("XMLAgg"), "xmlagg");
}

TEST(StrUtilTest, XmlEscapeRoundTrip) {
  std::string nasty = "a<b&c>\"d'e";
  EXPECT_EQ(XmlEscape(nasty), "a&lt;b&amp;c&gt;&quot;d&apos;e");
  EXPECT_EQ(XmlUnescape(XmlEscape(nasty)), nasty);
  EXPECT_EQ(XmlUnescape("&bogus;"), "&bogus;");  // unknown entity passes
}

// -- ParseInt64 / ParseDouble (common/parse.h) ------------------------------
//
// These helpers exist because two inline strtoll/strtod call sites
// accepted "" as 0 (end != text trivially passes when both are the start)
// and never checked errno, so ERANGE silently clamped to LLONG_MAX.

TEST(ParseTest, ParsesPlainIntegers) {
  EXPECT_EQ(*ParseInt64("0"), 0);
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("-17"), -17);
  EXPECT_EQ(*ParseInt64("+8"), 8);
  EXPECT_EQ(*ParseInt64("9223372036854775807"), INT64_MAX);
  EXPECT_EQ(*ParseInt64("-9223372036854775808"), INT64_MIN);
}

TEST(ParseTest, RejectsEmptyAndWhitespaceInt) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64(" ").ok());
  EXPECT_FALSE(ParseInt64(" 5").ok());
  EXPECT_FALSE(ParseInt64("5 ").ok());
  EXPECT_FALSE(ParseInt64("\t5").ok());
}

TEST(ParseTest, RejectsTrailingGarbageInt) {
  EXPECT_FALSE(ParseInt64("5xyz").ok());
  EXPECT_FALSE(ParseInt64("12.5").ok());
  EXPECT_FALSE(ParseInt64("0x10").ok());
  EXPECT_FALSE(ParseInt64("--3").ok());
  EXPECT_FALSE(ParseInt64("xyz").ok());
}

TEST(ParseTest, RejectsOutOfRangeIntInsteadOfClamping) {
  // The motivating bug: the old inline strtoll returned LLONG_MAX here.
  auto r = ParseInt64("99999999999999999999999");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_FALSE(ParseInt64("-99999999999999999999999").ok());
}

TEST(ParseTest, ParsesPlainDoubles) {
  EXPECT_DOUBLE_EQ(*ParseDouble("0"), 0.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-2.25e2"), -225.0);
  EXPECT_DOUBLE_EQ(*ParseDouble(".5"), 0.5);
}

TEST(ParseTest, RejectsEmptyWhitespaceAndGarbageDouble) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble(" 1.5").ok());
  EXPECT_FALSE(ParseDouble("1.5 ").ok());
  EXPECT_FALSE(ParseDouble("5xyz").ok());   // the "5xyz" -> 5.0 env bug
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
}

TEST(ParseTest, RejectsNonFiniteAndOverflowDouble) {
  EXPECT_FALSE(ParseDouble("inf").ok());
  EXPECT_FALSE(ParseDouble("nan").ok());
  EXPECT_FALSE(ParseDouble("1e999").ok());
  EXPECT_FALSE(ParseDouble("-1e999").ok());
  // Subnormal underflow is implementation-defined ERANGE; accept either
  // a tiny value or a rejection, but never a crash.
  auto tiny = ParseDouble("1e-400");
  if (tiny.ok()) EXPECT_GE(*tiny, 0.0);
}

}  // namespace
}  // namespace archis
