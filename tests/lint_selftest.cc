// Self-test for archis-lint: seeded violation fixtures prove every rule
// can fire, and conforming fixtures prove the clean pass stays clean.
#include "lint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace archis::lint {
namespace {

/// Names of the rules that fire for `contents` at `path`.
std::vector<std::string> Fired(const std::string& path,
                               const std::string& contents) {
  std::vector<std::string> rules;
  for (const Finding& f : LintSource(path, contents)) {
    rules.push_back(f.rule);
  }
  std::sort(rules.begin(), rules.end());
  rules.erase(std::unique(rules.begin(), rules.end()), rules.end());
  return rules;
}

bool FiredRule(const std::string& path, const std::string& contents,
               const std::string& rule) {
  const auto rules = Fired(path, contents);
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

// ---- forbidden-literal ----------------------------------------------------

TEST(ForbiddenLiteral, FiresOnSentinelString) {
  EXPECT_TRUE(FiredRule("src/archis/seeded.cc",
                        "const char* k = \"9999-12-31\";\n",
                        "forbidden-literal"));
}

TEST(ForbiddenLiteral, FiresOnSentinelFromYmd) {
  EXPECT_TRUE(FiredRule("src/storage/seeded.cc",
                        "Date d = Date::FromYmd(9999, 12, 31);\n",
                        "forbidden-literal"));
}

TEST(ForbiddenLiteral, AllowedInsideDateModule) {
  EXPECT_FALSE(FiredRule("src/common/date.cc",
                         "Date Date::Forever() { return FromYmd(9999, 12, "
                         "31); }\n",
                         "forbidden-literal"));
  EXPECT_FALSE(FiredRule("src/temporal/now.cc",
                         "bool IsNow(const std::string& s) { return s == "
                         "\"9999-12-31\"; }\n",
                         "forbidden-literal"));
}

TEST(ForbiddenLiteral, IgnoresComments) {
  EXPECT_FALSE(FiredRule("src/archis/seeded.cc",
                         "// the sentinel 9999-12-31 lives in date.cc\n"
                         "/* also 9999-12-31 here */\n",
                         "forbidden-literal"));
}

TEST(ForbiddenLiteral, ReportsLineNumber) {
  const auto findings =
      LintSource("src/archis/seeded.cc",
                 "int x;\nint y;\nconst char* k = \"9999-12-31\";\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_EQ(findings[0].rule, "forbidden-literal");
}

// ---- raw-interval ---------------------------------------------------------

TEST(RawInterval, FiresOnDirectConstruction) {
  EXPECT_TRUE(FiredRule("src/temporal/seeded.cc",
                        "auto iv = TimeInterval(a, b);\n", "raw-interval"));
  EXPECT_TRUE(FiredRule("src/temporal/seeded.cc",
                        "Use(TimeInterval{a, b});\n", "raw-interval"));
}

TEST(RawInterval, AllowsDefaultConstructionAndFactories) {
  EXPECT_FALSE(FiredRule("src/temporal/seeded.cc",
                         "TimeInterval iv;\n"
                         "auto a = MakeInterval(s, e);\n"
                         "auto b = MakeIntervalChecked(s, e);\n"
                         "std::optional<TimeInterval> c;\n",
                         "raw-interval"));
}

TEST(RawInterval, AllowedInsideIntervalModule) {
  EXPECT_FALSE(FiredRule("src/common/interval.h",
                         "return TimeInterval(MinDate(a, b), MaxDate(a, "
                         "b));\n",
                         "raw-interval"));
}

// ---- raw-mutex ------------------------------------------------------------

TEST(RawMutex, FiresOnStdPrimitives) {
  EXPECT_TRUE(FiredRule("src/archis/seeded.h", "std::mutex mu_;\n",
                        "raw-mutex"));
  EXPECT_TRUE(FiredRule("src/archis/seeded.cc",
                        "std::lock_guard<std::mutex> l(mu_);\n",
                        "raw-mutex"));
  EXPECT_TRUE(FiredRule("src/archis/seeded.cc",
                        "std::call_once(flag_, [] {});\n", "raw-mutex"));
  EXPECT_TRUE(FiredRule("src/archis/seeded.h",
                        "std::condition_variable_any cv_;\n", "raw-mutex"));
}

TEST(RawMutex, AllowsAnnotatedWrappers) {
  EXPECT_FALSE(FiredRule("src/archis/seeded.h",
                         "Mutex mu_;\nMutexLock lock(mu_);\nCondVar cv_;\n",
                         "raw-mutex"));
}

TEST(RawMutex, AllowedInsideWrapperHeader) {
  EXPECT_FALSE(FiredRule("src/common/mutex.h",
                         "std::mutex mu_;\nstd::condition_variable cv_;\n",
                         "raw-mutex"));
}

// ---- void-mutator ---------------------------------------------------------

TEST(VoidMutator, FiresOnVoidReturningMutatorInScopedHeader) {
  EXPECT_TRUE(FiredRule("src/storage/seeded.h", "void FlushAll();\n",
                        "void-mutator"));
  EXPECT_TRUE(FiredRule("src/compress/seeded.h",
                        "virtual void WriteBlock(int b);\n", "void-mutator"));
}

TEST(VoidMutator, AllowsStatusReturnsAndAccessors) {
  EXPECT_FALSE(FiredRule("src/storage/seeded.h",
                         "Status FlushAll();\n"
                         "void set_cache_capacity(uint64_t b);\n"
                         "void reset();\n",
                         "void-mutator"));
}

TEST(VoidMutator, OnlyAppliesToPersistenceHeaders) {
  // xml/ is outside the storage-facing scope, and .cc files hold
  // definitions whose declarations were already checked.
  EXPECT_FALSE(FiredRule("src/xml/seeded.h", "void AppendChild(N n);\n",
                         "void-mutator"));
  EXPECT_FALSE(FiredRule("src/storage/seeded.cc", "void FlushAll() {}\n",
                         "void-mutator"));
}

// ---- deprecated-api -------------------------------------------------------

TEST(DeprecatedApi, FiresOnFlushLog) {
  EXPECT_TRUE(FiredRule("src/workload/seeded.cc",
                        "ARCHIS_RETURN_NOT_OK(db->FlushLog());\n",
                        "deprecated-api"));
}

TEST(DeprecatedApi, FiresOnLegacyCreateRelation) {
  EXPECT_TRUE(FiredRule(
      "tests/seeded.cc",
      "ASSERT_TRUE(db.CreateRelation(\"emp\", schema, {\"id\"},\n"
      "                              binding, \"emps.xml\").ok());\n",
      "deprecated-api"));
}

TEST(DeprecatedApi, AllowsRelationSpecOverloadAndCommit) {
  EXPECT_FALSE(FiredRule("src/workload/seeded.cc",
                         "RelationSpec spec;\n"
                         "spec.name = \"employees\";\n"
                         "ARCHIS_RETURN_NOT_OK(db->CreateRelation(spec));\n"
                         "ARCHIS_RETURN_NOT_OK(db->Commit());\n",
                         "deprecated-api"));
}

TEST(DeprecatedApi, FiresInsideTheFacadeNowThatTheShimsAreGone) {
  // The [[deprecated]] shims were deleted, and with them the facade's
  // grandfathered exemption: reintroducing one is a lint error.
  EXPECT_TRUE(FiredRule("src/archis/archis.cc",
                        "Status ArchIS::FlushLog() { return Commit(); }\n",
                        "deprecated-api"));
}

TEST(DeprecatedApi, IgnoresLongerIdentifiers) {
  EXPECT_FALSE(FiredRule("src/archis/seeded.cc",
                         "void FlushLogBuffers();\n"
                         "int MyFlushLog = 0;\n",
                         "deprecated-api"));
}

// ---- suppressions ---------------------------------------------------------

TEST(Suppression, CommentAboveSuppressesFinding) {
  EXPECT_FALSE(FiredRule(
      "src/storage/seeded.h",
      "// archis-lint: allow(void-mutator) -- provably infallible\n"
      "void FlushAll();\n",
      "void-mutator"));
}

TEST(Suppression, TrailingCommentSuppressesFinding) {
  EXPECT_FALSE(FiredRule(
      "src/archis/seeded.h",
      "std::mutex mu_;  // archis-lint: allow(raw-mutex) -- seeded\n",
      "raw-mutex"));
}

TEST(Suppression, OnlySuppressesNamedRule) {
  EXPECT_TRUE(FiredRule(
      "src/storage/seeded.h",
      "// archis-lint: allow(raw-mutex) -- wrong rule named\n"
      "void FlushAll();\n",
      "void-mutator"));
}

// ---- conforming fixture ---------------------------------------------------

TEST(CleanPass, ConformingSourceHasNoFindings) {
  const std::string conforming =
      "// A conforming storage header.\n"
      "#include \"common/mutex.h\"\n"
      "class Thing {\n"
      " public:\n"
      "  Status Flush();\n"
      "  Result<TimeInterval> Window() const;\n"
      " private:\n"
      "  mutable Mutex mu_{LockRank::kPageManager};\n"
      "  TimeInterval window_ ARCHIS_GUARDED_BY(mu_);\n"
      "};\n"
      "inline TimeInterval Widen(TimeInterval iv) {\n"
      "  return MakeInterval(iv.tstart, Date::Forever());\n"
      "}\n";
  EXPECT_TRUE(LintSource("src/storage/seeded.h", conforming).empty());
}

// ---- raw-logging ----------------------------------------------------------

TEST(RawLogging, FiresOnFprintfStderr) {
  EXPECT_TRUE(FiredRule("src/archis/seeded.cc",
                        "void F() { std::fprintf(stderr, \"oops\\n\"); }\n",
                        "raw-logging"));
}

TEST(RawLogging, FiresOnStdCoutAndCerr) {
  EXPECT_TRUE(FiredRule("src/minirel/seeded.cc",
                        "void F() { std::cout << \"x\"; }\n",
                        "raw-logging"));
  EXPECT_TRUE(FiredRule("src/minirel/seeded.cc",
                        "void F() { std::cerr << \"x\"; }\n",
                        "raw-logging"));
}

TEST(RawLogging, IgnoresSnprintfAndOtherLongerTokens) {
  EXPECT_FALSE(FiredRule(
      "src/archis/seeded.cc",
      "void F() { char b[8]; std::snprintf(b, sizeof(b), \"%d\", 1); }\n",
      "raw-logging"));
  EXPECT_FALSE(FiredRule("src/archis/seeded.cc",
                         "void F() { std::vsnprintf(nullptr, 0, \"\", {}); "
                         "}\n",
                         "raw-logging"));
}

TEST(RawLogging, OnlyAppliesToSrc) {
  EXPECT_FALSE(FiredRule("bench/bench_common.h",
                         "void F() { std::fprintf(stderr, \"bench\\n\"); }\n",
                         "raw-logging"));
  EXPECT_FALSE(FiredRule("tools/archis_stats/archis_stats_main.cc",
                         "void F() { std::printf(\"metrics\\n\"); }\n",
                         "raw-logging"));
}

TEST(RawLogging, AllowedInsideLoggerImplementation) {
  EXPECT_FALSE(FiredRule("src/common/log.cc",
                         "void Emit() { std::fwrite(0, 1, 0, stderr); "
                         "std::fputc('\\n', stderr); }\n",
                         "raw-logging"));
}

TEST(RawLogging, SuppressionComment) {
  EXPECT_FALSE(FiredRule(
      "src/archis/seeded.cc",
      "// archis-lint: allow(raw-logging) -- early-boot, logger not up\n"
      "void F() { std::fprintf(stderr, \"boot\\n\"); }\n",
      "raw-logging"));
}

// ---- plan-ownership -------------------------------------------------------

TEST(PlanOwnership, FiresOnBraceConstruction) {
  EXPECT_TRUE(FiredRule("src/archis/seeded.cc",
                        "auto p = PhysicalPlan{};\n", "plan-ownership"));
}

TEST(PlanOwnership, FiresOnLocalDeclaration) {
  EXPECT_TRUE(FiredRule("src/archis/seeded.cc", "PhysicalPlan p;\n",
                        "plan-ownership"));
  EXPECT_TRUE(FiredRule("src/archis/seeded.cc",
                        "PhysicalPlan p = Cook();\n", "plan-ownership"));
}

TEST(PlanOwnership, AllowsReferencesAndFunctionDeclarations) {
  EXPECT_FALSE(FiredRule(
      "src/archis/seeded.cc",
      "void Run(const PhysicalPlan& p);\n"
      "const PhysicalPlan* chosen = nullptr;\n"
      "PhysicalPlan DefaultPhysicalPlan(const SqlXmlPlan& plan);\n"
      "std::optional<PhysicalPlan> fallback;\n",
      "plan-ownership"));
}

TEST(PlanOwnership, AllowsStructDefinitionAndPlanner) {
  EXPECT_FALSE(FiredRule("src/archis/sqlxml.h",
                         "struct PhysicalPlan {\n  double est = 0;\n};\n",
                         "plan-ownership"));
  EXPECT_FALSE(FiredRule("src/archis/planner.cc",
                         "PhysicalPlan physical;\nreturn physical;\n",
                         "plan-ownership"));
}

TEST(PlanOwnership, OnlyAppliesToSrc) {
  EXPECT_FALSE(FiredRule("tests/seeded.cc", "PhysicalPlan p;\n",
                         "plan-ownership"));
}

// ---- lock-rank ------------------------------------------------------------

TEST(LockRank, FiresOnUnrankedDeclaration) {
  EXPECT_TRUE(FiredRule("src/archis/seeded.h", "  mutable Mutex mu_;\n",
                        "lock-rank"));
  EXPECT_TRUE(FiredRule("src/archis/seeded.h", "  archis::Mutex mu;\n",
                        "lock-rank"));
}

TEST(LockRank, FiresOnEmptyBraceInit) {
  EXPECT_TRUE(
      FiredRule("src/archis/seeded.h", "  Mutex mu_{};\n", "lock-rank"));
}

TEST(LockRank, AllowsRankedDeclaration) {
  EXPECT_FALSE(FiredRule("src/archis/seeded.h",
                         "  mutable Mutex mu_{LockRank::kWal};\n",
                         "lock-rank"));
}

TEST(LockRank, AllowsUsesAndMutexLock) {
  EXPECT_FALSE(FiredRule("src/archis/seeded.cc",
                         "void F(Mutex& mu) {\n"
                         "  MutexLock lock(mu);\n"
                         "  Mutex* p = &mu;\n"
                         "}\n",
                         "lock-rank"));
}

TEST(LockRank, OnlyAppliesToSrc) {
  EXPECT_FALSE(
      FiredRule("tests/seeded.cc", "Mutex scratch;\n", "lock-rank"));
  EXPECT_FALSE(
      FiredRule("tools/seeded.cc", "Mutex scratch;\n", "lock-rank"));
}

TEST(LockRank, MutexImplementationExempt) {
  EXPECT_FALSE(FiredRule("src/common/mutex.h", "  Mutex fallback_;\n",
                         "lock-rank"));
}

TEST(LockRank, SuppressionComment) {
  EXPECT_FALSE(FiredRule(
      "src/archis/seeded.h",
      "  // archis-lint: allow(lock-rank) -- scratch lock in a test shim\n"
      "  Mutex mu_;\n",
      "lock-rank"));
}

// ---- trace-event-names ----------------------------------------------------

TEST(TraceEventNames, FiresOnNonEnumeratorFirstArgument) {
  EXPECT_TRUE(FiredRule("src/archis/seeded.cc", "fr::Record(3, id);\n",
                        "trace-event-names"));
  EXPECT_TRUE(FiredRule("src/archis/seeded.cc",
                        "fr::Record(event_type, id);\n",
                        "trace-event-names"));
  EXPECT_TRUE(FiredRule("src/archis/seeded.cc",
                        "fr::Record(static_cast<fr::EventType>(n), id);\n",
                        "trace-event-names"));
}

TEST(TraceEventNames, AllowsRegisteredEnumerators) {
  EXPECT_FALSE(FiredRule("src/archis/seeded.cc",
                         "fr::Record(fr::EventType::kTxnBegin, id);\n",
                         "trace-event-names"));
  EXPECT_FALSE(FiredRule("src/archis/seeded.cc",
                         "fr::Record(\n    EventType::kWalFsync, a, b);\n",
                         "trace-event-names"));
  EXPECT_FALSE(FiredRule(
      "src/archis/seeded.cc",
      "archis::fr::Record(archis::fr::EventType::kCrash, 0, 0, 0, r);\n",
      "trace-event-names"));
}

TEST(TraceEventNames, IgnoresLongerIdentifiersAndComments) {
  EXPECT_FALSE(FiredRule("src/archis/seeded.cc", "myfr::Record(3, id);\n",
                         "trace-event-names"));
  EXPECT_FALSE(FiredRule("src/archis/seeded.cc",
                         "// fr::Record(3, id) would be rejected\n",
                         "trace-event-names"));
}

TEST(TraceEventNames, FiresOnNonSnakeCaseDisplayName) {
  EXPECT_TRUE(FiredRule("src/common/flight_recorder.h",
                        "#define LIST(X) X(kFoo, \"FooBar\")\n",
                        "trace-event-names"));
  EXPECT_TRUE(FiredRule("src/common/flight_recorder.h",
                        "#define LIST(X) X(kFoo, \"7foo\")\n",
                        "trace-event-names"));
}

TEST(TraceEventNames, AllowsSnakeCaseNamesAndScopesToRegistryHeader) {
  EXPECT_FALSE(FiredRule("src/common/flight_recorder.h",
                         "#define LIST(X) X(kFoo, \"foo_bar2\")\n",
                         "trace-event-names"));
  // The display-name arm only applies to the registry header itself.
  EXPECT_FALSE(FiredRule("src/archis/seeded.cc", "X(kFoo, \"FooBar\")\n",
                         "trace-event-names"));
}

TEST(TraceEventNames, SuppressionComment) {
  EXPECT_FALSE(FiredRule(
      "src/archis/seeded.cc",
      "// archis-lint: allow(trace-event-names) -- replaying a saved type\n"
      "fr::Record(saved_type, id);\n",
      "trace-event-names"));
}

// ---- raw-socket ------------------------------------------------------------

TEST(RawSocket, FiresOnSocketCallsOutsideServer) {
  EXPECT_TRUE(FiredRule("src/archis/seeded.cc",
                        "int fd = ::socket(AF_INET, SOCK_STREAM, 0);\n",
                        "raw-socket"));
  EXPECT_TRUE(FiredRule("tools/seeded/seeded_main.cc",
                        "int c = accept(lfd, nullptr, nullptr);\n",
                        "raw-socket"));
  EXPECT_TRUE(FiredRule("src/common/seeded.cc",
                        "setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &o, n);\n",
                        "raw-socket"));
}

TEST(RawSocket, AllowedInsideServerSubsystem) {
  EXPECT_FALSE(FiredRule("src/server/server.cc",
                         "int fd = ::socket(AF_INET, SOCK_STREAM, 0);\n",
                         "raw-socket"));
  EXPECT_FALSE(FiredRule("src/server/client.cc",
                         "setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, n);\n",
                         "raw-socket"));
}

TEST(RawSocket, IgnoresIdentifiersAndNonCalls) {
  EXPECT_FALSE(FiredRule("src/archis/seeded.cc",
                         "int socket_count = 0;\nstd::string socket_path;\n",
                         "raw-socket"));
  EXPECT_FALSE(FiredRule("src/archis/seeded.cc",
                         "// the socket (2) man page\nint accepted = 1;\n",
                         "raw-socket"));
}

// ---- comment stripping ----------------------------------------------------

TEST(StripCommentsTest, PreservesLineStructureAndStrings) {
  const std::string src = "int a; // trailing\n/* b\nlines */ int c = 1;\n"
                          "const char* s = \"// not a comment\";\n";
  const std::string stripped = StripComments(src);
  EXPECT_EQ(std::count(src.begin(), src.end(), '\n'),
            std::count(stripped.begin(), stripped.end(), '\n'));
  EXPECT_EQ(stripped.find("trailing"), std::string::npos);
  EXPECT_NE(stripped.find("int c = 1;"), std::string::npos);
  EXPECT_NE(stripped.find("\"// not a comment\""), std::string::npos);
}

}  // namespace
}  // namespace archis::lint
