// Tests for the parallel read path: parallel multi-segment scans must be
// bit-identical to the sequential configuration (content AND order),
// concurrent read-only clients must all see the same result, the
// decompressed-block LRU cache must hit/evict as configured, and the
// temporal zone maps must prune blocks without changing scan output.
//
// This suite is expected to pass under -DARCHIS_SANITIZE=thread.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <sstream>
#include <thread>

#include "archis/archis.h"
#include "archis/segment_manager.h"
#include "compress/blob_store.h"
#include "xml/serializer.h"

namespace archis::core {
namespace {

using minirel::DataType;
using minirel::Schema;
using minirel::Tuple;
using minirel::Value;

Date D(int y, int m, int d) { return Date::FromYmd(y, m, d); }

Schema SalarySchema() {
  return Schema({{"id", DataType::kInt64},
                 {"salary", DataType::kInt64},
                 {"tstart", DataType::kDate},
                 {"tend", DataType::kDate}});
}

std::unique_ptr<SegmentedStore> MakeStore(minirel::Database* db,
                                          SegmentOptions opts,
                                          const std::string& name) {
  auto store =
      SegmentedStore::Create(db, name, SalarySchema(), opts, D(1990, 1, 1));
  EXPECT_TRUE(store.ok());
  return std::move(*store);
}

// Deterministic multi-segment workload: 30 ids churned over ~4 years so a
// umin of 0.6 freezes several segments.
void RunWorkload(SegmentedStore* store) {
  std::mt19937 rng(7);
  Date day = D(1990, 1, 1);
  for (int64_t id = 1; id <= 30; ++id) {
    ASSERT_TRUE(
        store->InsertVersion(id, {Value(int64_t{1000 * id})}, day).ok());
  }
  for (int step = 0; step < 600; ++step) {
    day = day.AddDays(1 + static_cast<int64_t>(rng() % 3));
    int64_t id = 1 + static_cast<int64_t>(rng() % 30);
    if (store->CloseVersion(id, day).ok()) {
      ASSERT_TRUE(
          store->InsertVersion(id, {Value(int64_t{step})}, day).ok());
    }
  }
}

// Serializes a scan's emitted rows, order included.
std::string Rows(const SegmentedStore& store,
                 const std::function<Status(
                     const std::function<bool(const Tuple&)>&)>& scan) {
  std::ostringstream out;
  Status st = scan([&](const Tuple& row) {
    out << row.at(0).AsInt() << '|' << row.at(1).AsInt() << '|'
        << row.at(2).AsDate().days() << '|' << row.at(3).AsDate().days()
        << '\n';
    return true;
  });
  EXPECT_TRUE(st.ok()) << st.ToString() << " on " << store.name();
  return out.str();
}

std::string HistoryRows(const SegmentedStore& s) {
  return Rows(s, [&](auto fn) { return s.ScanHistory(fn); });
}
std::string IntervalRows(const SegmentedStore& s, const TimeInterval& iv) {
  return Rows(s, [&](auto fn) { return s.ScanInterval(iv, fn); });
}
std::string SnapshotRows(const SegmentedStore& s, Date t) {
  return Rows(s, [&](auto fn) { return s.ScanSnapshot(t, fn); });
}
std::string IdRows(const SegmentedStore& s, int64_t id) {
  return Rows(s, [&](auto fn) { return s.ScanId(id, fn); });
}

class ParallelScanTest : public ::testing::TestWithParam<bool> {};

// The tentpole contract: with > 1 covering segment, the threaded scan's
// emission order and content equal the sequential scan's, for every scan
// flavour, compressed and uncompressed.
TEST_P(ParallelScanTest, MatchesSequentialBitForBit) {
  const bool compressed = GetParam();
  minirel::Database db;
  SegmentOptions seq;
  seq.umin = 0.6;
  seq.compress = compressed;
  seq.scan_threads = 1;
  SegmentOptions par = seq;
  par.scan_threads = 4;
  auto a = MakeStore(&db, seq, "seq");
  auto b = MakeStore(&db, par, "par");
  RunWorkload(a.get());
  RunWorkload(b.get());
  ASSERT_GE(a->segments().size(), 2u);
  ASSERT_EQ(a->segments().size(), b->segments().size());

  StoreScanStats pstats;
  std::string par_hist = Rows(*b, [&](auto fn) {
    return b->ScanHistory(fn, &pstats);
  });
  EXPECT_EQ(HistoryRows(*a), par_hist);
  EXPECT_GT(pstats.segments_scanned, 1u);

  for (const TimeInterval& iv :
       {TimeInterval(D(1990, 6, 1), D(1992, 6, 1)),
        TimeInterval(D(1991, 1, 1), D(1991, 3, 1)),
        TimeInterval(D(1990, 1, 1), Date::Forever())}) {
    EXPECT_EQ(IntervalRows(*a, iv), IntervalRows(*b, iv)) << iv.ToString();
  }
  for (Date t : {D(1990, 7, 1), D(1991, 7, 1), D(1993, 1, 1)}) {
    EXPECT_EQ(SnapshotRows(*a, t), SnapshotRows(*b, t)) << t.ToString();
  }
  for (int64_t id : {int64_t{1}, int64_t{15}, int64_t{30}}) {
    EXPECT_EQ(IdRows(*a, id), IdRows(*b, id)) << "id " << id;
  }

  // Stats parity: both modes count the same tuples and segments.
  StoreScanStats sstats;
  ASSERT_TRUE(a->ScanHistory([](const Tuple&) { return true; }, &sstats)
                  .ok());
  EXPECT_EQ(sstats.tuples_scanned, pstats.tuples_scanned);
  EXPECT_EQ(sstats.segments_scanned, pstats.segments_scanned);
}

INSTANTIATE_TEST_SUITE_P(CompressedAndNot, ParallelScanTest,
                         ::testing::Bool());

// N client threads hammer one store with mixed scans; every result must
// equal the sequential twin's. Exercises the shared pool, the shared block
// cache, and the page-manager stat counters under TSan.
TEST(ScanConcurrencyTest, ConcurrentClientsSeeIdenticalResults) {
  minirel::Database db;
  SegmentOptions seq;
  seq.umin = 0.6;
  seq.compress = true;
  SegmentOptions par = seq;
  par.scan_threads = 4;
  auto ref = MakeStore(&db, seq, "ref");
  auto store = MakeStore(&db, par, "hot");
  RunWorkload(ref.get());
  RunWorkload(store.get());
  ASSERT_GE(store->segments().size(), 2u);

  const std::string want_hist = HistoryRows(*ref);
  const TimeInterval iv(D(1990, 6, 1), D(1992, 6, 1));
  const std::string want_iv = IntervalRows(*ref, iv);

  constexpr int kClients = 8;
  std::vector<int> mismatches(kClients, 0);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < 5; ++round) {
        if ((c + round) % 2 == 0) {
          if (HistoryRows(*store) != want_hist) ++mismatches[c];
        } else {
          if (IntervalRows(*store, iv) != want_iv) ++mismatches[c];
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(mismatches[c], 0) << "client " << c;
  }
}

// ---------------------------------------------------------------------------
// BlobStore-level cache and zone-map unit tests.
// ---------------------------------------------------------------------------

// Multi-block store whose record times advance with sid: record i lives
// [base + 10 * i, base + 10 * i + 9]. Payloads carry a pseudo-random tail
// so zlib cannot collapse hundreds of records into one block.
std::unique_ptr<compress::BlobStore> MakeBlobStore(size_t records,
                                                   uint64_t cache_bytes) {
  std::mt19937 rng(17);
  std::vector<std::pair<int64_t, std::string>> recs;
  std::vector<TimeInterval> times;
  recs.reserve(records);
  for (size_t i = 0; i < records; ++i) {
    std::string payload = "payload-" + std::to_string(i) + "-";
    for (int j = 0; j < 200; ++j) {
      payload.push_back(static_cast<char>('a' + rng() % 26));
    }
    recs.emplace_back(static_cast<int64_t>(i), payload);
    Date start = D(1990, 1, 1).AddDays(static_cast<int64_t>(10 * i));
    times.emplace_back(start, start.AddDays(9));
  }
  compress::BlockZipOptions zip;
  zip.block_size = 512;  // force many blocks
  auto store = std::make_unique<compress::BlobStore>();
  EXPECT_TRUE(store->Build(recs, zip, times).ok());
  store->set_cache_capacity(cache_bytes);
  return store;
}

TEST(BlockCacheTest, WarmScanServesEveryBlockFromCache) {
  auto store = MakeBlobStore(400, 64ull << 20);
  ASSERT_GT(store->block_count(), 8u);
  auto consume = [](int64_t, const std::string&) { return true; };

  compress::BlobReadStats cold;
  ASSERT_TRUE(store->ScanAll(consume, &cold).ok());
  EXPECT_EQ(cold.blocks_decompressed, store->block_count());
  EXPECT_EQ(cold.block_cache_hits, 0u);
  EXPECT_EQ(cold.block_cache_misses, store->block_count());
  EXPECT_EQ(store->CachedBytes(), store->RawBytes());

  compress::BlobReadStats warm;
  ASSERT_TRUE(store->ScanAll(consume, &warm).ok());
  EXPECT_EQ(warm.blocks_decompressed, 0u);
  EXPECT_EQ(warm.block_cache_hits, store->block_count());
  EXPECT_EQ(warm.block_cache_misses, 0u);
}

TEST(BlockCacheTest, SmallCapacityEvicts) {
  auto probe = MakeBlobStore(400, 0);
  ASSERT_GT(probe->block_count(), 8u);
  const uint64_t raw = probe->RawBytes();
  auto store = MakeBlobStore(400, raw / 4);
  auto consume = [](int64_t, const std::string&) { return true; };
  ASSERT_TRUE(store->ScanAll(consume).ok());
  // Eviction kept residency under the full working set.
  EXPECT_LT(store->CachedBytes(), raw);
  EXPECT_GT(store->CachedBytes(), 0u);
  // A second full sweep cannot be all-hits: some blocks were evicted.
  compress::BlobReadStats again;
  ASSERT_TRUE(store->ScanAll(consume, &again).ok());
  EXPECT_GT(again.block_cache_misses, 0u);
}

TEST(BlockCacheTest, ZeroCapacityDisablesCaching) {
  auto store = MakeBlobStore(100, 0);
  auto consume = [](int64_t, const std::string&) { return true; };
  compress::BlobReadStats s1, s2;
  ASSERT_TRUE(store->ScanAll(consume, &s1).ok());
  ASSERT_TRUE(store->ScanAll(consume, &s2).ok());
  EXPECT_EQ(store->CachedBytes(), 0u);
  EXPECT_EQ(s2.block_cache_hits, 0u);
  EXPECT_EQ(s2.blocks_decompressed, store->block_count());
}

TEST(ZoneMapTest, TimeWindowPrunesBlocksWithoutLosingRecords) {
  auto store = MakeBlobStore(400, 0);
  ASSERT_GT(store->block_count(), 8u);
  // Records 100..119 live inside this window (10-day versions).
  TimeInterval window(D(1990, 1, 1).AddDays(1000),
                      D(1990, 1, 1).AddDays(1199));
  std::vector<int64_t> got;
  compress::BlobReadStats stats;
  ASSERT_TRUE(store
                  ->ScanRangeInterval(INT64_MIN, INT64_MAX, window,
                                      [&](int64_t sid, const std::string&) {
                                        got.push_back(sid);
                                        return true;
                                      },
                                      &stats)
                  .ok());
  EXPECT_GT(stats.blocks_pruned_by_time, 0u);
  EXPECT_LT(stats.blocks_decompressed, store->block_count());
  // Surviving blocks still contain every qualifying record (sids 100..119),
  // possibly with same-block neighbours; row filtering is the caller's job.
  ASSERT_FALSE(got.empty());
  for (int64_t sid = 100; sid < 120; ++sid) {
    EXPECT_NE(std::find(got.begin(), got.end(), sid), got.end())
        << "sid " << sid << " lost to over-pruning";
  }
  // Zone-map metadata is exact per block.
  for (const compress::BlobBlockMeta& m : store->metadata()) {
    EXPECT_EQ(m.min_tstart,
              D(1990, 1, 1).AddDays(10 * m.start_sid).days());
    EXPECT_EQ(m.max_tend,
              D(1990, 1, 1).AddDays(10 * m.end_sid + 9).days());
  }
}

// Store-level integration: narrow time windows skip blocks of a compressed
// frozen segment whose version times lie outside the window. Ids are
// inserted on staggered days and never closed, so in the id-sorted frozen
// segment each block's min_tstart grows with id — an early window prunes
// every later block via the zone map, while the row output still matches an
// uncompressed twin.
TEST(ZoneMapTest, StoreScanPrunesTimeDisjointBlocks) {
  minirel::Database db;
  SegmentOptions plain;
  auto ref = MakeStore(&db, plain, "plainref");
  SegmentOptions comp = plain;
  comp.compress = true;
  comp.block_size = 256;  // many small blocks per segment
  auto store = MakeStore(&db, comp, "zoned");
  Date day = D(1990, 1, 1);
  for (auto* s : {ref.get(), store.get()}) {
    for (int64_t id = 1; id <= 400; ++id) {
      ASSERT_TRUE(s->InsertVersion(id, {Value(int64_t{1000 + id})},
                                   day.AddDays(10 * (id - 1)))
                      .ok());
    }
    ASSERT_TRUE(s->Freeze(day.AddDays(4200)).ok());
  }
  ASSERT_EQ(store->segments().size(), 1u);

  TimeInterval narrow(D(1990, 1, 5), D(1990, 2, 5));  // ids 1..4 only
  StoreScanStats stats;
  std::string got = Rows(*store, [&](auto fn) {
    return store->ScanInterval(narrow, fn, &stats);
  });
  EXPECT_EQ(got, IntervalRows(*ref, narrow));
  EXPECT_GT(stats.blocks_pruned_by_time, 0u);
}

// Repeated snapshots of a compressed multi-segment store are served from
// the decompressed-block cache on the warm run.
TEST(BlockCacheTest, StoreSnapshotHitsCacheWhenWarm) {
  minirel::Database db;
  SegmentOptions plain;
  plain.umin = 0.6;
  auto ref = MakeStore(&db, plain, "plainref");
  SegmentOptions comp = plain;
  comp.compress = true;
  auto store = MakeStore(&db, comp, "cached");
  RunWorkload(ref.get());
  RunWorkload(store.get());
  ASSERT_GE(store->segments().size(), 2u);

  StoreScanStats cold, warm;
  Date t = D(1991, 7, 1);
  std::string first = Rows(*store, [&](auto fn) {
    return store->ScanSnapshot(t, fn, &cold);
  });
  std::string second = Rows(*store, [&](auto fn) {
    return store->ScanSnapshot(t, fn, &warm);
  });
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, SnapshotRows(*ref, t));
  EXPECT_GT(cold.blocks_decompressed, 0u);
  EXPECT_GT(warm.block_cache_hits, 0u);
  EXPECT_EQ(warm.blocks_decompressed, 0u);
}

// End-to-end: the published H-document (the system's user-visible output)
// is byte-identical between scan_threads=1 and scan_threads=4 instances fed
// the same update stream.
TEST(ScanConcurrencyTest, PublishedHistoryIsByteIdenticalAcrossThreads) {
  Schema emp({{"id", DataType::kInt64},
              {"salary", DataType::kInt64},
              {"title", DataType::kString}});
  auto build = [&](int threads) {
    ArchISOptions opts;
    opts.segment.umin = 0.6;
    opts.segment.compress = true;
    opts.segment.scan_threads = threads;
    auto db = std::make_unique<ArchIS>(opts, D(1995, 1, 1));
    RelationSpec spec;
    spec.name = "employees";
    spec.schema = emp;
    spec.key_columns = {"id"};
    spec.doc_name = "employees.xml";
    EXPECT_TRUE(db->CreateRelation(spec).ok());
    std::mt19937 rng(11);
    Date day = D(1995, 1, 1);
    for (int64_t id = 1; id <= 12; ++id) {
      Tuple row{Value(id), Value(int64_t{40000 + 100 * id}),
                Value(std::string("Engineer"))};
      EXPECT_TRUE(db->Insert("employees", row).ok());
    }
    for (int step = 0; step < 200; ++step) {
      day = day.AddDays(1 + static_cast<int64_t>(rng() % 7));
      EXPECT_TRUE(db->AdvanceClock(day).ok());
      int64_t id = 1 + static_cast<int64_t>(rng() % 12);
      Tuple row{Value(id), Value(int64_t{40000 + 10 * step}),
                Value(step % 3 == 0 ? std::string("Lead")
                                    : std::string("Engineer"))};
      EXPECT_TRUE(db->Update("employees", {Value(id)}, row).ok());
    }
    return db;
  };
  auto seq = build(1);
  auto par = build(4);
  auto seq_doc = seq->PublishHistory("employees");
  auto par_doc = par->PublishHistory("employees");
  ASSERT_TRUE(seq_doc.ok());
  ASSERT_TRUE(par_doc.ok());
  EXPECT_EQ(xml::Serialize(*seq_doc), xml::Serialize(*par_doc));
}

}  // namespace
}  // namespace archis::core
