// Tests for xmldb/: the TaminoLite native XML database baseline.
#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xml/serializer.h"
#include "xmldb/xml_database.h"

namespace archis::xmldb {
namespace {

Date D(int y, int m, int d) { return Date::FromYmd(y, m, d); }

xml::XmlNodePtr SampleDoc() {
  auto doc = xml::ParseDocument(R"(
<employees tstart="1995-01-01" tend="9999-12-31">
  <employee tstart="1995-01-01" tend="9999-12-31">
    <id tstart="1995-01-01" tend="9999-12-31">1001</id>
    <name tstart="1995-01-01" tend="9999-12-31">Bob</name>
    <salary tstart="1995-01-01" tend="1995-05-31">60000</salary>
    <salary tstart="1995-06-01" tend="9999-12-31">70000</salary>
  </employee>
</employees>)");
  EXPECT_TRUE(doc.ok());
  return *doc;
}

class DocumentStoreModes : public ::testing::TestWithParam<StorageMode> {};

TEST_P(DocumentStoreModes, PutGetRoundTrip) {
  DocumentStore store(GetParam());
  auto doc = SampleDoc();
  ASSERT_TRUE(store.Put("employees.xml", doc).ok());
  ASSERT_TRUE(store.Has("employees.xml"));
  auto back = store.Get("employees.xml");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  // Structure survives the storage round trip.
  EXPECT_EQ(xml::Serialize(*back), xml::Serialize(doc));
}

TEST_P(DocumentStoreModes, MissingDocumentIsNotFound) {
  DocumentStore store(GetParam());
  EXPECT_EQ(store.Get("nope.xml").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Stats("nope.xml").status().code(), StatusCode::kNotFound);
}

INSTANTIATE_TEST_SUITE_P(BothModes, DocumentStoreModes,
                         ::testing::Values(StorageMode::kNative,
                                           StorageMode::kCompressed));

TEST(DocumentStoreTest, CompressedModeShrinksNativeModeExpands) {
  // The paper's Figure 11/13 pattern: Tamino compresses to ~0.22 of the
  // document size; without compression native storage *expands* (1.47).
  auto doc = SampleDoc();
  // Make the document big enough for ratios to be meaningful.
  auto root = xml::XmlNode::Element("employees");
  for (int i = 0; i < 500; ++i) {
    root->AppendChild(doc->ChildElements()[0]->Clone());
  }
  DocumentStore zip(StorageMode::kCompressed);
  DocumentStore native(StorageMode::kNative);
  ASSERT_TRUE(zip.Put("d", root).ok());
  ASSERT_TRUE(native.Put("d", root).ok());
  auto zs = zip.Stats("d");
  auto ns = native.Stats("d");
  ASSERT_TRUE(zs.ok() && ns.ok());
  EXPECT_LT(zs->stored_bytes, zs->source_bytes / 3);   // compresses well
  EXPECT_GT(ns->stored_bytes, ns->source_bytes);       // expands
  EXPECT_EQ(zs->source_bytes, ns->source_bytes);
}

TEST(XmlDatabaseTest, QueriesRunAgainstStoredDocuments) {
  XmlDatabase db(StorageMode::kCompressed, D(1997, 1, 1));
  ASSERT_TRUE(db.PutDocument("employees.xml", SampleDoc()).ok());
  auto r = db.Query(
      "for $s in doc(\"employees.xml\")/employees/employee"
      "[name=\"Bob\"]/salary return $s");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ((*r)[0].node()->StringValue(), "60000");
}

TEST(XmlDatabaseTest, DocumentLevelUpdate) {
  XmlDatabase db(StorageMode::kCompressed, D(1997, 1, 1));
  ASSERT_TRUE(db.PutDocument("employees.xml", SampleDoc()).ok());
  // Raise Bob's current salary by closing the live version and appending a
  // new one — the document-level update path of Section 8.4.
  ASSERT_TRUE(db.UpdateDocument("employees.xml",
                                [](const xml::XmlNodePtr& root) -> Status {
    auto emp = root->FirstChildNamed("employee");
    auto salaries = emp->ChildrenNamed("salary");
    salaries.back()->SetAttr("tend", "1996-12-31");
    auto fresh = xml::XmlNode::Element("salary");
    fresh->SetAttr("tstart", "1997-01-01");
    fresh->SetAttr("tend", "9999-12-31");
    fresh->AppendText("77000");
    emp->AppendChild(fresh);
    return Status::OK();
  }).ok());
  auto r = db.Query(
      "for $s in doc(\"employees.xml\")/employees/employee/salary"
      "[tend(.) = current-date()] return $s");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0].node()->StringValue(), "77000");
}

TEST(XmlDatabaseTest, StorageAccounting) {
  XmlDatabase db(StorageMode::kCompressed, D(1997, 1, 1));
  EXPECT_EQ(db.store().TotalStoredBytes(), 0u);
  ASSERT_TRUE(db.PutDocument("a.xml", SampleDoc()).ok());
  ASSERT_TRUE(db.PutDocument("b.xml", SampleDoc()).ok());
  EXPECT_GT(db.store().TotalStoredBytes(), 0u);
  EXPECT_EQ(db.store().Names().size(), 2u);
}

}  // namespace
}  // namespace archis::xmldb
