// Tests for the observability layer: the metrics registry (counters,
// gauges, histograms, exposition), the per-query trace spans, the
// structured logger, and the end-to-end wiring through ArchIS::Query /
// ArchIS::DumpMetrics on a real workload.
#include <atomic>
#include <cmath>
#include <cstdio>
#include <map>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "archis/archis.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "minirel/schema.h"
#include "minirel/value.h"
#include "workload/employee_workload.h"
#include "xml/serializer.h"

namespace archis {
namespace {

using core::ArchIS;
using core::ArchISOptions;
using core::PlanStats;
using core::PlanVar;
using core::QueryOptions;
using core::SqlXmlPlan;

// ---------------------------------------------------------------------------
// Counter / Gauge

TEST(CounterTest, IncrementsAndWrapsModulo2e64) {
  metrics::Counter c;
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value(), 42u);
  // Overflow is modular, not saturating: a rate() over text exposition
  // handles wraps, so the counter must too.
  c.Inc(UINT64_MAX - 41);
  EXPECT_EQ(c.value(), 0u);
  c.Inc(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST(CounterTest, DisabledCounterIsFrozen) {
  metrics::Counter c;
  c.Inc(3);
  metrics::SetEnabled(false);
  c.Inc(100);
  metrics::SetEnabled(true);
  EXPECT_EQ(c.value(), 3u);
  c.Inc();
  EXPECT_EQ(c.value(), 4u);
}

TEST(CounterTest, ConcurrentIncrementsLoseNothing) {
  metrics::Counter c;
  constexpr int kThreads = 8;
  constexpr int kIncs = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncs; ++i) c.Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kIncs);
}

TEST(GaugeTest, SetAndAddBothDirections) {
  metrics::Gauge g;
  g.Set(10);
  g.Add(-25);
  EXPECT_EQ(g.value(), -15);
  g.Add(15);
  EXPECT_EQ(g.value(), 0);
}

// ---------------------------------------------------------------------------
// Histogram

TEST(HistogramTest, BucketsAreCumulativeWithInfOverflow) {
  metrics::Histogram h({1.0, 2.0, 5.0});
  h.Observe(0.5);   // bucket le=1
  h.Observe(1.0);   // le=1 (upper bound is inclusive)
  h.Observe(1.5);   // le=2
  h.Observe(100.0); // +Inf
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 103.0);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 0u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // +Inf
}

TEST(HistogramTest, PercentileInterpolatesInsideCoveringBucket) {
  metrics::Histogram h({10.0, 20.0, 30.0});
  for (int i = 0; i < 100; ++i) h.Observe(15.0);  // all in (10, 20]
  // The covering bucket for every quantile is (10, 20]; interpolation
  // stays inside it.
  EXPECT_GE(h.Percentile(0.50), 10.0);
  EXPECT_LE(h.Percentile(0.50), 20.0);
  EXPECT_GE(h.Percentile(0.99), h.Percentile(0.50));
}

TEST(HistogramTest, PercentileOrderingAcrossBuckets) {
  metrics::Histogram h(metrics::LinearBuckets(1.0, 1.0, 10));
  for (int i = 1; i <= 10; ++i) {
    for (int j = 0; j < 10; ++j) h.Observe(static_cast<double>(i) - 0.5);
  }
  const double p50 = h.Percentile(0.50);
  const double p95 = h.Percentile(0.95);
  const double p99 = h.Percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_NEAR(p50, 5.0, 1.0);
  EXPECT_NEAR(p95, 9.5, 1.0);
}

TEST(HistogramTest, EmptyAndOverflowClampBehaviour) {
  metrics::Histogram h({1.0, 2.0});
  EXPECT_EQ(h.Percentile(0.5), 0.0);
  h.Observe(50.0);
  // Everything landed above the largest finite bound: the estimate clamps
  // to that bound rather than inventing mass beyond it.
  EXPECT_DOUBLE_EQ(h.Percentile(0.99), 2.0);
}

TEST(HistogramTest, ConcurrentObservePreservesTotals) {
  metrics::Histogram h(metrics::ExponentialBuckets(1.0, 2.0, 8));
  constexpr int kThreads = 8;
  constexpr int kObs = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kObs; ++i) h.Observe(1.0 + (t + i) % 7);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kObs);
  uint64_t in_buckets = 0;
  for (size_t i = 0; i <= h.bounds().size(); ++i) in_buckets += h.bucket_count(i);
  EXPECT_EQ(in_buckets, h.count());
}

TEST(HistogramTest, BucketHelpers) {
  const auto exp = metrics::ExponentialBuckets(1e-6, 10.0, 4);
  ASSERT_EQ(exp.size(), 4u);
  EXPECT_DOUBLE_EQ(exp[0], 1e-6);
  EXPECT_NEAR(exp[3], 1e-3, 1e-12);
  const auto lin = metrics::LinearBuckets(0.05, 0.05, 20);
  ASSERT_EQ(lin.size(), 20u);
  EXPECT_NEAR(lin.back(), 1.0, 1e-9);
  // Default ladders must be strictly increasing (lower_bound depends on it).
  for (const auto& bounds :
       {metrics::DefaultLatencyBuckets(), metrics::DefaultSizeBuckets()}) {
    for (size_t i = 1; i < bounds.size(); ++i) {
      EXPECT_LT(bounds[i - 1], bounds[i]);
    }
  }
}

TEST(HistogramTest, PercentileExactlyOnBucketEdgeReturnsTheBound) {
  // Regression for the shared interpolation (PercentileFromBuckets): when
  // rank * count lands exactly on a bucket's cumulative edge, the estimate
  // must be that bucket's upper bound — not interpolate into (or divide
  // by) the next bucket. Histogram::Percentile and
  // WindowedHistogram::Stats both defer here, so this pins both.
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  // 99 observations land <= 1 and one in (2, 4]: the p99 rank (0.99 * 100
  // = 99) is exactly the cumulative count of bucket 0.
  const std::vector<uint64_t> buckets = {99, 0, 1, 0};
  EXPECT_DOUBLE_EQ(metrics::PercentileFromBuckets(bounds, buckets, 0.99),
                   1.0);
  // One rank past the edge jumps to the covering bucket (2, 4].
  EXPECT_GT(metrics::PercentileFromBuckets(bounds, buckets, 0.999), 2.0);
  // A mid-ladder edge behaves the same: p50 of a 50/50 split sits on the
  // first bound.
  EXPECT_DOUBLE_EQ(
      metrics::PercentileFromBuckets({1.0, 2.0}, {50, 50, 0}, 0.50), 1.0);

  metrics::Histogram h(bounds);
  for (int i = 0; i < 99; ++i) h.Observe(0.5);
  h.Observe(3.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.99), 1.0);
}

// ---------------------------------------------------------------------------
// WindowedHistogram

// SetClockForTest takes a plain function pointer, so the fake clock lives
// at namespace scope.
std::atomic<uint64_t> g_fake_secs{1000};
uint64_t FakeClock() { return g_fake_secs.load(std::memory_order_relaxed); }

TEST(WindowedHistogramTest, StatsMergeTheTrailingWindow) {
  metrics::WindowedHistogram w(metrics::LinearBuckets(1.0, 1.0, 10));
  g_fake_secs.store(1000);
  w.SetClockForTest(&FakeClock);
  for (int i = 0; i < 100; ++i) w.Observe(4.5);
  const auto s1 = w.Stats(1);
  EXPECT_EQ(s1.count, 100u);
  EXPECT_DOUBLE_EQ(s1.rate_per_sec, 100.0);
  EXPECT_GT(s1.p50, 4.0);
  EXPECT_LE(s1.p50, 5.0);
  EXPECT_LE(s1.p50, s1.p95);
  EXPECT_LE(s1.p95, s1.p99);
  // A wider window sees the same observations at a fraction of the rate.
  const auto s10 = w.Stats(10);
  EXPECT_EQ(s10.count, 100u);
  EXPECT_DOUBLE_EQ(s10.rate_per_sec, 10.0);
}

TEST(WindowedHistogramTest, OldSecondsAgeOutOfTheWindow) {
  metrics::WindowedHistogram w({1.0, 2.0});
  g_fake_secs.store(2000);
  w.SetClockForTest(&FakeClock);
  w.Observe(0.5);
  g_fake_secs.store(2001);
  w.Observe(1.5);
  w.Observe(1.5);
  // 1s window = the current second only; 2s adds the one before it.
  EXPECT_EQ(w.Stats(1).count, 2u);
  EXPECT_EQ(w.Stats(2).count, 3u);
  // Far in the future everything has aged out, even though the ring still
  // physically holds the stale epochs.
  g_fake_secs.store(2100);
  EXPECT_EQ(w.Stats(60).count, 0u);
  EXPECT_DOUBLE_EQ(w.Stats(60).rate_per_sec, 0.0);
  EXPECT_DOUBLE_EQ(w.Stats(60).p99, 0.0);
}

TEST(WindowedHistogramTest, SlotReuseZeroesStaleSubHistogram) {
  metrics::WindowedHistogram w({1.0});
  g_fake_secs.store(3000);
  w.SetClockForTest(&FakeClock);
  for (int i = 0; i < 5; ++i) w.Observe(0.5);
  // 64 seconds later the same ring slot is reclaimed for a new epoch; the
  // stale counts must not bleed into the new second.
  g_fake_secs.store(3064);
  w.Observe(0.5);
  EXPECT_EQ(w.Stats(1).count, 1u);
  EXPECT_EQ(w.Stats(60).count, 1u);
}

TEST(WindowedHistogramTest, SharesBucketEdgePercentileSemantics) {
  // Same distribution as PercentileExactlyOnBucketEdgeReturnsTheBound —
  // the windowed path must agree because the implementation is shared.
  metrics::WindowedHistogram w({1.0, 2.0, 4.0});
  g_fake_secs.store(4000);
  w.SetClockForTest(&FakeClock);
  for (int i = 0; i < 99; ++i) w.Observe(0.5);
  w.Observe(3.0);
  EXPECT_DOUBLE_EQ(w.Stats(1).p99, 1.0);
}

TEST(WindowedHistogramTest, ResetClearsAndRealClockRestores) {
  metrics::WindowedHistogram w({1.0});
  g_fake_secs.store(5000);
  w.SetClockForTest(&FakeClock);
  w.Observe(0.5);
  EXPECT_EQ(w.Stats(1).count, 1u);
  w.Reset();
  EXPECT_EQ(w.Stats(1).count, 0u);
  // nullptr restores the real clock; the observation lands in the actual
  // current second and is visible through the widest window.
  w.SetClockForTest(nullptr);
  w.Observe(0.5);
  EXPECT_EQ(w.Stats(60).count, 1u);
}

// ---------------------------------------------------------------------------
// Registry

TEST(RegistryTest, GetOrCreateReturnsStablePointers) {
  metrics::Registry reg;
  metrics::Counter* a = reg.GetCounter("requests_total", "help");
  metrics::Counter* b = reg.GetCounter("requests_total", "ignored");
  EXPECT_EQ(a, b);
  a->Inc(5);
  EXPECT_EQ(b->value(), 5u);
}

TEST(RegistryTest, TypeMismatchReturnsDetachedDummy) {
  metrics::Registry reg;
  reg.GetCounter("x_total", "a counter");
  metrics::Gauge* dummy = reg.GetGauge("x_total", "now a gauge?");
  ASSERT_NE(dummy, nullptr);
  dummy->Set(123);  // must not crash, must not render
  const std::string text = reg.TextFormat();
  EXPECT_NE(text.find("# TYPE x_total counter"), std::string::npos);
  EXPECT_EQ(text.find("123"), std::string::npos);
}

TEST(RegistryTest, TextFormatIsWellFormedExposition) {
  metrics::Registry reg;
  reg.GetCounter("b_total", "b counter")->Inc(2);
  reg.GetGauge("a_gauge", "a gauge")->Set(-7);
  auto* h = reg.GetHistogram("lat_seconds", "latency", {0.1, 1.0});
  h->Observe(0.05);
  h->Observe(10.0);
  const std::string text = reg.TextFormat();
  // Instruments sort by name: a_gauge before b_total before lat_seconds.
  EXPECT_LT(text.find("a_gauge"), text.find("b_total"));
  EXPECT_LT(text.find("b_total"), text.find("lat_seconds"));
  // Every non-comment line is `name{labels} value`.
  const std::regex line_re(
      R"(^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? -?[0-9].*$|^# (HELP|TYPE) .*$)");
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(std::regex_match(line, line_re)) << "bad line: " << line;
  }
  // Histogram exposition: cumulative buckets, +Inf, sum, count.
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"0.1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 2"), std::string::npos);
}

int CountOccurrences(const std::string& text, const std::string& needle) {
  int n = 0;
  for (size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(RegistryTest, LabeledFamilySharesOneHeader) {
  // Labeled variants (`x_total{reason="..."}`) are distinct instruments
  // but one exposition family: exactly one HELP/TYPE for the base name.
  metrics::Registry reg;
  reg.GetCounter("abort_total{reason=\"conflict\"}", "aborts by reason")
      ->Inc(2);
  reg.GetCounter("abort_total{reason=\"explicit\"}", "aborts by reason")
      ->Inc(1);
  const std::string text = reg.TextFormat();
  EXPECT_EQ(CountOccurrences(text, "# HELP abort_total "), 1);
  EXPECT_EQ(CountOccurrences(text, "# TYPE abort_total counter"), 1);
  EXPECT_NE(text.find("abort_total{reason=\"conflict\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("abort_total{reason=\"explicit\"} 1"),
            std::string::npos);
}

TEST(RegistryTest, LabeledHistogramMergesLabelsIntoSampleLines) {
  // Histogram sample suffixes attach to the base name with the family's
  // labels merged into each sample's label set — the broken shape
  // `x_seconds{outcome="ok"}_bucket{...}` is not valid exposition.
  metrics::Registry reg;
  auto* ok = reg.GetHistogram("commit_seconds{outcome=\"ok\"}", "commit",
                              {0.1, 1.0});
  reg.GetHistogram("commit_seconds{outcome=\"conflict\"}", "commit",
                   {0.1, 1.0});
  ok->Observe(0.05);
  const std::string text = reg.TextFormat();
  EXPECT_EQ(CountOccurrences(text, "# TYPE commit_seconds histogram"), 1);
  EXPECT_NE(
      text.find("commit_seconds_bucket{outcome=\"ok\",le=\"0.1\"} 1"),
      std::string::npos);
  EXPECT_NE(
      text.find("commit_seconds_bucket{outcome=\"conflict\",le=\"+Inf\"} 0"),
      std::string::npos);
  EXPECT_NE(text.find("commit_seconds_count{outcome=\"ok\"} 1"),
            std::string::npos);
  EXPECT_EQ(text.find("}_bucket"), std::string::npos);
  EXPECT_EQ(text.find("}_sum"), std::string::npos);
  EXPECT_EQ(text.find("}_count"), std::string::npos);
}

TEST(RegistryTest, WindowedHistogramRendersWindowAndStatLabels) {
  metrics::Registry reg;
  auto* w = reg.GetWindowed("q_window_seconds", "windowed latency", {1.0});
  g_fake_secs.store(6000);
  w->SetClockForTest(&FakeClock);
  w->Observe(0.5);
  const std::string text = reg.TextFormat();
  EXPECT_EQ(CountOccurrences(text, "# TYPE q_window_seconds gauge"), 1);
  for (const char* win : {"1s", "10s", "60s"}) {
    for (const char* stat : {"rate", "p50", "p95", "p99"}) {
      const std::string line = std::string("q_window_seconds{window=\"") +
                               win + "\",stat=\"" + stat + "\"}";
      EXPECT_NE(text.find(line), std::string::npos) << "missing " << line;
    }
  }
  EXPECT_NE(text.find("q_window_seconds{window=\"1s\",stat=\"rate\"} 1"),
            std::string::npos);
}

TEST(RegistryTest, TryTextFormatMatchesTextFormatWhenUncontended) {
  // The crash path renders through TryTextFormat; uncontended it must be
  // byte-identical to the blocking exposition (windowed stats aside, so
  // keep the registry windowed-free here).
  metrics::Registry reg;
  reg.GetCounter("t_total", "t")->Inc(3);
  reg.GetGauge("g_gauge", "g")->Set(-1);
  EXPECT_EQ(reg.TryTextFormat(), reg.TextFormat());
  EXPECT_NE(reg.TryTextFormat().find("t_total 3"), std::string::npos);
}

TEST(RegistryTest, ResetValuesKeepsRegistrations) {
  metrics::Registry reg;
  metrics::Counter* c = reg.GetCounter("c_total", "h");
  auto* h = reg.GetHistogram("h_seconds", "h", {1.0});
  c->Inc(9);
  h->Observe(0.5);
  reg.ResetValues();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(reg.GetCounter("c_total", "h"), c);  // same instrument
}

// ---------------------------------------------------------------------------
// Trace

TEST(TraceTest, NullTraceSpansAreNoOps) {
  trace::ScopedSpan span(nullptr, "never");
  span.Note("k", "v");  // must not crash
}

TEST(TraceTest, BuildsNestedTreeWithNotesAndDurations) {
  trace::Trace tr;
  {
    trace::ScopedSpan parse(&tr, "parse");
  }
  {
    trace::ScopedSpan exec(&tr, "execute");
    {
      trace::ScopedSpan scan(&tr, "segment-scan");
      scan.Note("table", "employees_salary");
      scan.Note("rows", uint64_t{42});
    }
  }
  trace::QueryProfile profile = tr.TakeProfile();
  EXPECT_EQ(profile.root.name, "query");
  ASSERT_EQ(profile.root.children.size(), 2u);
  EXPECT_GE(profile.root.duration_ns, 1u);

  const trace::Span* scan = trace::FindSpan(profile.root, "segment-scan");
  ASSERT_NE(scan, nullptr);
  EXPECT_GE(scan->duration_ns, 1u);
  ASSERT_EQ(scan->notes.size(), 2u);
  EXPECT_EQ(scan->notes[0].first, "table");
  EXPECT_EQ(scan->notes[1].second, "42");
  EXPECT_EQ(trace::FindSpan(profile.root, "nope"), nullptr);

  const std::string rendered = profile.Render();
  EXPECT_NE(rendered.find("query"), std::string::npos);
  EXPECT_NE(rendered.find("segment-scan"), std::string::npos);
  EXPECT_NE(rendered.find("table=employees_salary"), std::string::npos);
  EXPECT_NE(rendered.find("ms"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Logger

class LogCapture {
 public:
  LogCapture() {
    logging::SetSink([this](const std::string& line) { lines_.push_back(line); });
  }
  ~LogCapture() {
    logging::SetSink(nullptr);
    logging::SetMinLevel(logging::Level::kWarn);
    logging::SetFormat(logging::Format::kKeyValue);
  }
  const std::vector<std::string>& lines() const { return lines_; }

 private:
  std::vector<std::string> lines_;
};

TEST(LogTest, KeyValueLineWithQuoting) {
  LogCapture cap;
  logging::SetMinLevel(logging::Level::kInfo);
  logging::Info("test.event")
      .Kv("plain", "simple")
      .Kv("spaced", "two words")
      .Kv("n", 42)
      .Kv("flag", true);
  ASSERT_EQ(cap.lines().size(), 1u);
  const std::string& line = cap.lines()[0];
  EXPECT_NE(line.find("level=info"), std::string::npos);
  EXPECT_NE(line.find("event=test.event"), std::string::npos);
  EXPECT_NE(line.find("plain=simple"), std::string::npos);
  EXPECT_NE(line.find("spaced=\"two words\""), std::string::npos);
  EXPECT_NE(line.find("n=42"), std::string::npos);
  EXPECT_NE(line.find("flag=true"), std::string::npos);
  EXPECT_NE(line.find("ts="), std::string::npos);
}

TEST(LogTest, LevelFilteringDropsBelowMin) {
  LogCapture cap;
  logging::SetMinLevel(logging::Level::kWarn);
  logging::Debug("dropped").Kv("k", 1);
  logging::Info("dropped").Kv("k", 2);
  logging::Warn("kept");
  logging::Error("kept.too");
  ASSERT_EQ(cap.lines().size(), 2u);
  EXPECT_NE(cap.lines()[0].find("kept"), std::string::npos);
  EXPECT_NE(cap.lines()[1].find("level=error"), std::string::npos);
}

TEST(LogTest, JsonFormatEscapes) {
  LogCapture cap;
  logging::SetMinLevel(logging::Level::kInfo);
  logging::SetFormat(logging::Format::kJson);
  logging::Info("json.event").Kv("msg", "a \"quoted\"\nvalue");
  ASSERT_EQ(cap.lines().size(), 1u);
  const std::string& line = cap.lines()[0];
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"event\":\"json.event\""), std::string::npos);
  EXPECT_NE(line.find("\\\"quoted\\\"\\nvalue"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: workload -> freeze -> profiled query -> DumpMetrics

uint64_t GlobalCounterValue(const std::string& name) {
  return metrics::Registry::Global().GetCounter(name, "")->value();
}

TEST(ObservabilityIntegrationTest, ProfiledQueryAndMetricsExposition) {
  ArchISOptions options;
  options.segment.compress = true;
  options.wal.path = std::string(::testing::TempDir()) + "/metrics_test.wal";
  std::remove(options.wal.path.c_str());  // a prior run's log would replay

  workload::WorkloadConfig config;
  config.initial_employees = 30;
  config.years = 4;

  auto opened = ArchIS::Open(options, config.start_date);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ArchIS& db = **opened;

  workload::EmployeeWorkload wl(config);
  auto stats = wl.Generate(&db);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_TRUE(db.FreezeAll().ok());

  const std::string query =
      "for $s in doc(\"employees.xml\")/employees/employee/"
      "salary[tstart(.) <= xs:date(\"1987-06-01\") and "
      "tend(.) >= xs:date(\"1987-06-01\")] return $s";

  // Cold run warms the block cache so the profiled run records hits.
  QueryOptions qopts;
  ASSERT_TRUE(db.Query(query, qopts).ok());

  qopts.collect_profile = true;
  auto result = db.Query(query, qopts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->profile.has_value());

  const trace::Span& root = result->profile->root;
  for (const char* name : {"parse", "translate", "execute", "segment-scan"}) {
    const trace::Span* span = trace::FindSpan(root, name);
    ASSERT_NE(span, nullptr) << "missing span " << name;
    EXPECT_GE(span->duration_ns, 1u) << name;
  }
  // The scan span carries its executor notes.
  const trace::Span* scan = trace::FindSpan(root, "segment-scan");
  bool has_rows_note = false;
  for (const auto& [k, v] : scan->notes) has_rows_note |= (k == "rows");
  EXPECT_TRUE(has_rows_note);

  // An unprofiled query must not pay for a tree.
  qopts.collect_profile = false;
  auto plain = db.Query(query, qopts);
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->profile.has_value());

  const std::string text = ArchIS::DumpMetrics();
  const std::regex nonzero(
      "(archis_wal_fsync_seconds_count|archis_block_cache_hits_total|"
      "archis_page_reads_total|archis_segment_freezes_total|"
      "archis_segment_freeze_usefulness_count|archis_queries_translated_total|"
      "archis_txn_commits_total|archis_changes_captured_total) ([0-9]+)");
  std::map<std::string, uint64_t> seen;
  for (std::sregex_iterator it(text.begin(), text.end(), nonzero), end;
       it != end; ++it) {
    seen[(*it)[1]] = std::stoull((*it)[2]);
  }
  for (const char* name :
       {"archis_wal_fsync_seconds_count", "archis_block_cache_hits_total",
        "archis_page_reads_total", "archis_segment_freezes_total",
        "archis_segment_freeze_usefulness_count",
        "archis_queries_translated_total", "archis_txn_commits_total",
        "archis_changes_captured_total"}) {
    ASSERT_TRUE(seen.count(name)) << name << " absent from exposition";
    EXPECT_GT(seen[name], 0u) << name << " never incremented";
  }
}

TEST(ObservabilityIntegrationTest, FailedPlansStayAttributable) {
  ArchISOptions options;
  ArchIS db(options, Date::FromYmd(1990, 1, 1));

  const uint64_t plans_before = GlobalCounterValue("archis_exec_plans_total");
  const uint64_t failures_before =
      GlobalCounterValue("archis_exec_plan_failures_total");

  SqlXmlPlan plan;
  PlanVar var;
  var.xq_name = "$x";
  var.relation = "no_such_relation";
  plan.vars.push_back(var);

  PlanStats stats;
  auto result = db.Execute(plan, &stats);
  EXPECT_FALSE(result.ok());

  // Satellite fix: the failure still lands in the registry (and any stats
  // gathered before the error stay in `stats`), so failed queries show up
  // in rates instead of vanishing.
  EXPECT_EQ(GlobalCounterValue("archis_exec_plans_total"), plans_before + 1);
  EXPECT_EQ(GlobalCounterValue("archis_exec_plan_failures_total"),
            failures_before + 1);
}

TEST(ObservabilityIntegrationTest, QueryFailureCountsAndLatencyObserved) {
  ArchISOptions options;
  ArchIS db(options, Date::FromYmd(1990, 1, 1));
  const uint64_t failures_before =
      GlobalCounterValue("archis_query_failures_total");
  auto result = db.Query("for $x in ((((", QueryOptions{});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(GlobalCounterValue("archis_query_failures_total"),
            failures_before + 1);
}

TEST(ObservabilityIntegrationTest, AbortReasonBreakdownCounters) {
  ArchISOptions options;
  ArchIS db(options, Date::FromYmd(1990, 1, 1));
  core::RelationSpec spec;
  spec.name = "t";
  spec.schema = minirel::Schema({{"id", minirel::DataType::kInt64},
                                 {"v", minirel::DataType::kInt64}});
  spec.key_columns = {"id"};
  spec.doc_name = "t.xml";
  ASSERT_TRUE(db.CreateRelation(spec).ok());

  const std::string kExplicit = "archis_txn_abort_total{reason=\"explicit\"}";
  const std::string kWrongThread =
      "archis_txn_abort_total{reason=\"wrong_thread\"}";
  const uint64_t explicit_before = GlobalCounterValue(kExplicit);
  const uint64_t wrong_thread_before = GlobalCounterValue(kWrongThread);
  const uint64_t aggregate_before =
      GlobalCounterValue("archis_txn_aborts_total");

  // Explicit abort of a transaction that buffered changes.
  auto txn = db.Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(
      txn->Insert("t", {minirel::Value(int64_t{1}), minirel::Value(int64_t{2})})
          .ok());
  ASSERT_TRUE(txn->Abort().ok());
  EXPECT_EQ(GlobalCounterValue(kExplicit), explicit_before + 1);
  EXPECT_EQ(GlobalCounterValue("archis_txn_aborts_total"),
            aggregate_before + 1);

  // Wrong-thread use: the handle is thread-affine; touching it from a
  // second thread lands in the wrong_thread bucket.
  auto affine = db.Begin();
  ASSERT_TRUE(affine.ok());
  ASSERT_TRUE(affine
                  ->Insert("t", {minirel::Value(int64_t{2}),
                                 minirel::Value(int64_t{3})})
                  .ok());
  std::thread intruder([&affine] {
    const Status s = affine->Insert(
        "t", {minirel::Value(int64_t{3}), minirel::Value(int64_t{4})});
    EXPECT_FALSE(s.ok());
  });
  intruder.join();
  EXPECT_EQ(GlobalCounterValue(kWrongThread), wrong_thread_before + 1);
  ASSERT_TRUE(affine->Abort().ok());

  // Both labeled variants render under one family header.
  const std::string text = ArchIS::DumpMetrics();
  EXPECT_NE(text.find(kExplicit), std::string::npos);
  EXPECT_NE(text.find(kWrongThread), std::string::npos);
}

}  // namespace
}  // namespace archis
