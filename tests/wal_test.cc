// Unit tests for the durable change log: CRC framing and torn-tail
// detection in storage/log_file, record encoding / recovery parsing and
// leader-follower group commit in archis/wal. The concurrency tests are
// the suite run under TSan by scripts/check.sh.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>

#include "archis/wal.h"
#include "storage/log_file.h"

namespace archis::core {
namespace {

using minirel::Tuple;
using minirel::Value;
using storage::AppendFrame;
using storage::AppendLogFile;
using storage::LogFileOptions;
using storage::LogScan;
using storage::ScanLogFile;

Date D(int y, int m, int d) { return Date::FromYmd(y, m, d); }

std::string TempPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

ChangeRecord MakeChange(int64_t id, int64_t salary, Date when) {
  ChangeRecord c;
  c.kind = ChangeKind::kInsert;
  c.relation = "employees";
  c.new_row = Tuple{Value(id), Value("emp" + std::to_string(id)),
                    Value(salary)};
  c.when = when;
  return c;
}

TEST(LogFileTest, FramesRoundTripThroughScan) {
  const std::string path = TempPath("roundtrip.wal");
  LogFileOptions opts;
  opts.path = path;
  auto file = AppendLogFile::Open(opts);
  ASSERT_TRUE(file.ok());
  std::string framed;
  AppendFrame("alpha", &framed);
  AppendFrame("", &framed);
  AppendFrame(std::string(3000, 'x'), &framed);
  ASSERT_TRUE((*file)->Append(framed).ok());
  ASSERT_TRUE((*file)->Sync().ok());

  auto scan = ScanLogFile(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(scan->torn_tail);
  ASSERT_EQ(scan->records.size(), 3u);
  EXPECT_EQ(scan->records[0].payload, "alpha");
  EXPECT_EQ(scan->records[1].payload, "");
  EXPECT_EQ(scan->records[2].payload, std::string(3000, 'x'));
  EXPECT_EQ(scan->valid_bytes, framed.size());
}

TEST(LogFileTest, MissingFileScansEmpty) {
  auto scan = ScanLogFile(TempPath("never_created.wal"));
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->records.empty());
  EXPECT_EQ(scan->valid_bytes, 0u);
  EXPECT_FALSE(scan->torn_tail);
}

TEST(LogFileTest, TornTailIsDetectedAtEveryTruncationPoint) {
  const std::string path = TempPath("torn.wal");
  std::string framed;
  AppendFrame("first-record", &framed);
  const size_t first = framed.size();
  AppendFrame("second-record", &framed);
  {
    LogFileOptions opts;
    opts.path = path;
    auto file = AppendLogFile::Open(opts);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(framed).ok());
    ASSERT_TRUE((*file)->Sync().ok());
  }
  // Cut the file anywhere inside the second record: the first must still
  // scan, the tail must be flagged torn — never an error.
  for (size_t cut = first; cut < framed.size(); ++cut) {
    {
      std::remove(path.c_str());
      LogFileOptions opts;
      opts.path = path;
      auto file = AppendLogFile::Open(opts);
      ASSERT_TRUE(file.ok());
      ASSERT_TRUE((*file)->Append(framed).ok());
    }
    ASSERT_TRUE(storage::TruncateLogFile(path, cut).ok());
    auto scan = ScanLogFile(path);
    ASSERT_TRUE(scan.ok()) << "cut=" << cut;
    ASSERT_EQ(scan->records.size(), 1u) << "cut=" << cut;
    EXPECT_EQ(scan->valid_bytes, first);
    EXPECT_EQ(scan->torn_tail, cut != first) << "cut=" << cut;
  }
}

TEST(LogFileTest, CorruptPayloadByteStopsTheScanAtThatRecord) {
  const std::string path = TempPath("crc.wal");
  std::string framed;
  AppendFrame("first-record", &framed);
  const size_t first = framed.size();
  AppendFrame("second-record", &framed);
  // Flip a payload byte of the second record.
  framed[first + 8 + 3] = static_cast<char>(framed[first + 8 + 3] ^ 0x40);
  {
    LogFileOptions opts;
    opts.path = path;
    auto file = AppendLogFile::Open(opts);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(framed).ok());
  }
  auto scan = ScanLogFile(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_TRUE(scan->torn_tail);
  EXPECT_EQ(scan->valid_bytes, first);
}

TEST(LogFileTest, FaultInjectionTearsTheWriteAndGoesSticky) {
  const std::string path = TempPath("inject.wal");
  std::string framed;
  AppendFrame("doomed-record-payload", &framed);
  LogFileOptions opts;
  opts.path = path;
  opts.fail_after_bytes = 10;  // mid-record
  auto file = AppendLogFile::Open(opts);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ((*file)->Append(framed).code(), StatusCode::kIOError);
  // Sticky: the handle stays dead.
  EXPECT_EQ((*file)->Append("x").code(), StatusCode::kIOError);
  auto scan = ScanLogFile(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->records.empty());
  EXPECT_TRUE(scan->torn_tail);  // the 10-byte prefix is a torn record
}

TEST(WalTest, RecoverReturnsCommittedTxnsAndDdlInLogOrder) {
  const std::string path = TempPath("wal_order.wal");
  WalOptions opts;
  opts.path = path;
  auto wal = Wal::Open(opts, 1);
  ASSERT_TRUE(wal.ok());

  RelationSpec spec;
  spec.name = "employees";
  spec.schema = minirel::Schema({{"id", minirel::DataType::kInt64},
                                 {"name", minirel::DataType::kString},
                                 {"salary", minirel::DataType::kInt64}});
  spec.key_columns = {"id"};
  spec.doc_name = "employees.xml";
  spec.root_tag = "employees";
  spec.entity_tag = "employee";
  ASSERT_TRUE((*wal)->LogCreateRelation(spec, D(1995, 1, 1)).ok());

  const uint64_t t1 = (*wal)->NextTxnId();
  ASSERT_TRUE((*wal)
                  ->LogTransaction(t1,
                                   {MakeChange(1, 100, D(1995, 2, 1)),
                                    MakeChange(2, 200, D(1995, 2, 1))},
                                   D(1995, 2, 1))
                  .ok());
  ASSERT_TRUE((*wal)->LogDropRelation("employees", D(1995, 3, 1)).ok());

  auto rec = Wal::Recover(path);
  ASSERT_TRUE(rec.ok());
  EXPECT_FALSE(rec->torn_tail);
  EXPECT_EQ(rec->uncommitted_txns, 0u);
  EXPECT_EQ(rec->max_txn_id, t1);
  ASSERT_EQ(rec->items.size(), 3u);

  const auto* create = std::get_if<WalCreateRelation>(&rec->items[0]);
  ASSERT_NE(create, nullptr);
  EXPECT_EQ(create->spec.name, "employees");
  EXPECT_EQ(create->spec.key_columns, std::vector<std::string>{"id"});
  EXPECT_EQ(create->spec.doc_name, "employees.xml");
  EXPECT_EQ(create->spec.entity_tag, "employee");
  EXPECT_EQ(create->open_date, D(1995, 1, 1));
  ASSERT_EQ(create->spec.schema.num_columns(), 3u);

  const auto* txn = std::get_if<WalCommittedTxn>(&rec->items[1]);
  ASSERT_NE(txn, nullptr);
  EXPECT_EQ(txn->txn_id, t1);
  EXPECT_EQ(txn->commit_date, D(1995, 2, 1));
  ASSERT_EQ(txn->changes.size(), 2u);
  EXPECT_EQ(txn->changes[0].new_row, MakeChange(1, 100, D(1995, 2, 1)).new_row);

  const auto* drop = std::get_if<WalDropRelation>(&rec->items[2]);
  ASSERT_NE(drop, nullptr);
  EXPECT_EQ(drop->name, "employees");
  EXPECT_EQ(drop->when, D(1995, 3, 1));
}

TEST(WalTest, TxnTornMidWriteIsNotCommitted) {
  const std::string path = TempPath("wal_torn_txn.wal");
  WalOptions opts;
  opts.path = path;
  auto wal = Wal::Open(opts, 1);
  ASSERT_TRUE(wal.ok());
  const uint64_t t1 = (*wal)->NextTxnId();
  ASSERT_TRUE(
      (*wal)->LogTransaction(t1, {MakeChange(1, 100, D(1995, 1, 5))},
                             D(1995, 1, 5)).ok());
  auto full = Wal::Recover(path);
  ASSERT_TRUE(full.ok());
  const uint64_t committed_bytes = full->valid_bytes;

  // Reopen with a crash injected inside the second transaction's frames.
  WalOptions crash = opts;
  crash.fail_after_bytes = 30;
  auto wal2 = Wal::Open(crash, t1 + 1);
  ASSERT_TRUE(wal2.ok());
  const uint64_t t2 = (*wal2)->NextTxnId();
  EXPECT_EQ((*wal2)
                ->LogTransaction(t2, {MakeChange(2, 200, D(1995, 2, 5))},
                                 D(1995, 2, 5))
                .code(),
            StatusCode::kIOError);

  auto rec = Wal::Recover(path);
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec->torn_tail);
  // The valid prefix covers at least the committed txn; it may also keep
  // whole frames (e.g. the BEGIN) of the torn one, which then surfaces as
  // an uncommitted txn rather than a committed item.
  EXPECT_GE(rec->valid_bytes, committed_bytes);
  ASSERT_EQ(rec->items.size(), 1u);  // only the first txn survives
  EXPECT_EQ(std::get<WalCommittedTxn>(rec->items[0]).txn_id, t1);
  EXPECT_EQ(rec->uncommitted_txns, 1u);
}

TEST(WalTest, UncommittedTxnWithinValidPrefixIsDropped) {
  // A BEGIN+CHANGE run whose COMMIT never made it, followed by intact
  // frames, is structural crash fallout recovery must tolerate: build it
  // by hand at the framing layer.
  const std::string path = TempPath("wal_uncommitted.wal");
  WalOptions opts;
  opts.path = path;
  {
    auto wal = Wal::Open(opts, 7);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(
        (*wal)->LogTransaction(7, {MakeChange(1, 100, D(1995, 1, 2))},
                               D(1995, 1, 2)).ok());
  }
  // Append a BEGIN frame for txn 8 with no COMMIT.
  {
    std::string payload;
    payload.push_back(static_cast<char>(WalRecordType::kBegin));
    for (int i = 0; i < 8; ++i) {
      payload.push_back(i == 0 ? 8 : 0);  // u64le txn id = 8
    }
    std::string framed;
    AppendFrame(payload, &framed);
    storage::LogFileOptions lf;
    lf.path = path;
    auto file = AppendLogFile::Open(lf);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(framed).ok());
  }
  auto rec = Wal::Recover(path);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->items.size(), 1u);
  EXPECT_EQ(rec->uncommitted_txns, 1u);
  EXPECT_EQ(rec->max_txn_id, 8u);
}

TEST(WalConcurrencyTest, GroupCommitCoalescesConcurrentCommitters) {
  const std::string path = TempPath("wal_group.wal");
  WalOptions opts;
  opts.path = path;
  auto wal = Wal::Open(opts, 1);
  ASSERT_TRUE(wal.ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 24;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&wal, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const uint64_t id = (*wal)->NextTxnId();
        Status st = (*wal)->LogTransaction(
            id,
            {MakeChange(static_cast<int64_t>(id), 100 + t, D(1995, 1, 1))},
            D(1995, 1, 1));
        ASSERT_TRUE(st.ok()) << st.ToString();
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ((*wal)->commit_count(), kThreads * kPerThread);
  EXPECT_GE((*wal)->sync_count(), 1u);
  EXPECT_LE((*wal)->sync_count(), (*wal)->commit_count());

  auto rec = Wal::Recover(path);
  ASSERT_TRUE(rec.ok());
  EXPECT_FALSE(rec->torn_tail);
  EXPECT_EQ(rec->items.size(),
            static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(rec->uncommitted_txns, 0u);
  // Every txn id must be present exactly once.
  std::vector<bool> seen(kThreads * kPerThread + 1, false);
  for (const auto& item : rec->items) {
    const auto& txn = std::get<WalCommittedTxn>(item);
    ASSERT_LT(txn.txn_id, seen.size());
    EXPECT_FALSE(seen[txn.txn_id]);
    seen[txn.txn_id] = true;
  }
}

TEST(WalConcurrencyTest, InjectedCrashFailsEveryConcurrentCommitter) {
  const std::string path = TempPath("wal_group_crash.wal");
  WalOptions opts;
  opts.path = path;
  opts.fail_after_bytes = 600;
  auto wal = Wal::Open(opts, 1);
  ASSERT_TRUE(wal.ok());

  constexpr int kThreads = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&wal, &failures] {
      for (int i = 0; i < 20; ++i) {
        const uint64_t id = (*wal)->NextTxnId();
        Status st = (*wal)->LogTransaction(
            id, {MakeChange(static_cast<int64_t>(id), 1, D(1995, 1, 1))},
            D(1995, 1, 1));
        if (!st.ok()) {
          EXPECT_EQ(st.code(), StatusCode::kIOError);
          ++failures;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // The log died mid-run: at least one committer saw the failure, and the
  // on-disk prefix still recovers cleanly.
  EXPECT_GT(failures.load(), 0);
  auto rec = Wal::Recover(path);
  ASSERT_TRUE(rec.ok());
  // Every recovered item is a fully committed txn; the torn group batch
  // may leave whole BEGIN/CHANGE frames behind as uncommitted fallout.
  for (const auto& item : rec->items) {
    EXPECT_TRUE(std::holds_alternative<WalCommittedTxn>(item));
  }
}

}  // namespace
}  // namespace archis::core
