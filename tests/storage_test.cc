// Unit tests for storage/: slotted pages, heap files, page manager
// persistence, and the B+-tree (including a randomized property check
// against std::multimap).
#include <gtest/gtest.h>

#include <map>
#include <random>

#include "storage/bptree.h"
#include "storage/heap_file.h"
#include "storage/page_manager.h"

namespace archis::storage {
namespace {

TEST(PageTest, InsertReadDelete) {
  Page page;
  auto s1 = page.Insert("hello");
  ASSERT_TRUE(s1.ok());
  auto s2 = page.Insert("world!");
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*page.Read(*s1), "hello");
  EXPECT_EQ(*page.Read(*s2), "world!");
  EXPECT_EQ(page.live_records(), 2);
  ASSERT_TRUE(page.Delete(*s1).ok());
  EXPECT_EQ(page.Read(*s1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(page.live_records(), 1);
  // Double delete fails cleanly.
  EXPECT_EQ(page.Delete(*s1).code(), StatusCode::kNotFound);
}

TEST(PageTest, FillsUntilFull) {
  Page page;
  std::string record(100, 'x');
  int n = 0;
  while (page.CanFit(static_cast<uint32_t>(record.size()))) {
    ASSERT_TRUE(page.Insert(record).ok());
    ++n;
  }
  EXPECT_GT(n, 30);  // 4 KiB / ~104 bytes
  EXPECT_EQ(page.Insert(record).status().code(), StatusCode::kOutOfRange);
}

TEST(PageTest, UpdateInPlaceShrinksButNotGrows) {
  Page page;
  auto slot = page.Insert("0123456789");
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(page.UpdateInPlace(*slot, "abc").ok());
  EXPECT_EQ(*page.Read(*slot), "abc");
  EXPECT_EQ(page.UpdateInPlace(*slot, "this grew too long").code(),
            StatusCode::kOutOfRange);
}

TEST(HeapFileTest, AppendScanCount) {
  PageManager pm;
  HeapFile heap(&pm);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(heap.Append("record-" + std::to_string(i)).ok());
  }
  EXPECT_EQ(heap.CountLive(), 500u);
  EXPECT_GT(heap.pages().size(), 1u);
  // Scan preserves append order.
  int expected = 0;
  heap.Scan([&](const RecordId&, std::string_view bytes) {
    EXPECT_EQ(bytes, "record-" + std::to_string(expected));
    ++expected;
    return true;
  });
  EXPECT_EQ(expected, 500);
}

TEST(HeapFileTest, UpdateRelocatesGrownRecords) {
  PageManager pm;
  HeapFile heap(&pm);
  auto rid = heap.Append("tiny");
  ASSERT_TRUE(rid.ok());
  RecordId id = *rid;
  std::string big(200, 'y');
  ASSERT_TRUE(heap.Update(&id, big).ok());
  EXPECT_EQ(*heap.Read(id), big);
  EXPECT_EQ(heap.CountLive(), 1u);
}

TEST(HeapFileTest, ScanPagesRestrictsToGivenPages) {
  PageManager pm;
  HeapFile heap(&pm);
  std::string filler(1000, 'z');
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(heap.Append(filler).ok());
  ASSERT_GT(heap.pages().size(), 2u);
  uint64_t seen = 0;
  heap.ScanPages({heap.pages()[0]}, [&](const RecordId&, std::string_view) {
    ++seen;
    return true;
  });
  EXPECT_LT(seen, heap.CountLive());
  EXPECT_GT(seen, 0u);
}

TEST(PageManagerTest, CountsLogicalIo) {
  PageManager pm;
  PageId id = pm.Allocate();
  pm.ResetStats();
  pm.ReadPage(id);
  pm.ReadPage(id);
  pm.WritePage(id);
  EXPECT_EQ(pm.stats().page_reads, 2u);
  EXPECT_EQ(pm.stats().page_writes, 1u);
}

TEST(PageManagerTest, PersistAndReload) {
  PageManager pm;
  HeapFile heap(&pm);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(heap.Append("persisted-" + std::to_string(i)).ok());
  }
  const std::string path = ::testing::TempDir() + "/archis_pages.bin";
  ASSERT_TRUE(pm.PersistToFile(path).ok());

  PageManager pm2;
  ASSERT_TRUE(pm2.LoadFromFile(path).ok());
  ASSERT_EQ(pm2.page_count(), pm.page_count());
  // Records are byte-identical after reload.
  const Page& p0 = pm2.ReadPage(0);
  EXPECT_EQ(*p0.Read(0), "persisted-0");
}

TEST(PageManagerTest, LoadRejectsMissingFile) {
  PageManager pm;
  EXPECT_EQ(pm.LoadFromFile("/nonexistent/path.bin").code(),
            StatusCode::kIOError);
}

TEST(BPlusTreeTest, InsertAndPointLookup) {
  BPlusTree<int64_t, int64_t> tree;
  for (int64_t i = 0; i < 1000; ++i) tree.Insert(i * 7 % 1000, i);
  EXPECT_EQ(tree.size(), 1000u);
  int found = 0;
  tree.Lookup(21, [&](const int64_t&, const int64_t&) {
    ++found;
    return true;
  });
  EXPECT_EQ(found, 1);
}

TEST(BPlusTreeTest, DuplicateKeys) {
  BPlusTree<int64_t, int64_t> tree;
  for (int64_t i = 0; i < 100; ++i) tree.Insert(42, i);
  std::vector<int64_t> values;
  tree.Lookup(42, [&](const int64_t&, const int64_t& v) {
    values.push_back(v);
    return true;
  });
  EXPECT_EQ(values.size(), 100u);
}

TEST(BPlusTreeTest, RangeScanIsSortedAndBounded) {
  BPlusTree<int64_t, int64_t> tree;
  for (int64_t i = 999; i >= 0; --i) tree.Insert(i, i);
  std::vector<int64_t> keys;
  tree.ScanRange(100, 199, [&](const int64_t& k, const int64_t&) {
    keys.push_back(k);
    return true;
  });
  ASSERT_EQ(keys.size(), 100u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(keys.front(), 100);
  EXPECT_EQ(keys.back(), 199);
}

TEST(BPlusTreeTest, EraseRemovesOnlyMatchingPairs) {
  BPlusTree<int64_t, int64_t> tree;
  tree.Insert(1, 10);
  tree.Insert(1, 11);
  tree.Insert(2, 20);
  EXPECT_EQ(tree.Erase(1, 10), 1u);
  EXPECT_EQ(tree.size(), 2u);
  std::vector<int64_t> values;
  tree.Lookup(1, [&](const int64_t&, const int64_t& v) {
    values.push_back(v);
    return true;
  });
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0], 11);
}

TEST(BPlusTreeTest, EarlyTerminationStopsScan) {
  BPlusTree<int64_t, int64_t> tree;
  for (int64_t i = 0; i < 500; ++i) tree.Insert(i, i);
  int visited = 0;
  tree.ScanAll([&](const int64_t&, const int64_t&) {
    return ++visited < 10;
  });
  EXPECT_EQ(visited, 10);
}

class BPlusTreeProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BPlusTreeProperty, MatchesMultimapUnderRandomWorkload) {
  std::mt19937 rng(GetParam());
  BPlusTree<int64_t, int64_t> tree;
  std::multimap<int64_t, int64_t> reference;
  for (int op = 0; op < 3000; ++op) {
    int64_t key = static_cast<int64_t>(rng() % 200);
    int64_t value = static_cast<int64_t>(rng() % 1000000);
    if (rng() % 4 != 0 || reference.empty()) {
      tree.Insert(key, value);
      reference.emplace(key, value);
    } else {
      auto it = reference.lower_bound(key);
      if (it != reference.end()) {
        tree.Erase(it->first, it->second);
        reference.erase(it);
      }
    }
  }
  ASSERT_EQ(tree.size(), reference.size());
  // Full-range scan agrees key-by-key (values may reorder within a key).
  std::multimap<int64_t, int64_t> scanned;
  tree.ScanAll([&](const int64_t& k, const int64_t& v) {
    scanned.emplace(k, v);
    return true;
  });
  EXPECT_EQ(scanned, reference);
  // Spot range scans agree in count.
  for (int64_t lo = 0; lo < 200; lo += 37) {
    int64_t hi = lo + 25;
    size_t expect = 0;
    for (auto it = reference.lower_bound(lo);
         it != reference.end() && it->first <= hi; ++it) {
      ++expect;
    }
    size_t got = 0;
    tree.ScanRange(lo, hi, [&](const int64_t&, const int64_t&) {
      ++got;
      return true;
    });
    EXPECT_EQ(got, expect) << "range [" << lo << "," << hi << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BPlusTreeProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

TEST(BPlusTreeTest, CompositeKeysOrderLexicographically) {
  BPlusTree<std::pair<int64_t, int64_t>, int64_t> tree;
  for (int64_t seg = 1; seg <= 3; ++seg) {
    for (int64_t id = 0; id < 50; ++id) tree.Insert({seg, id}, seg * 100 + id);
  }
  // Scan exactly segment 2.
  std::vector<int64_t> hits;
  tree.ScanRange({2, INT64_MIN}, {2, INT64_MAX},
                 [&](const auto&, const int64_t& v) {
    hits.push_back(v);
    return true;
  });
  ASSERT_EQ(hits.size(), 50u);
  EXPECT_EQ(hits.front(), 200);
  EXPECT_EQ(hits.back(), 249);
}

}  // namespace
}  // namespace archis::storage
