// Tests for the XQuery -> SQL/XML translator (Algorithm 1): variable-range
// identification, join/where generation, temporal pushdowns (snapshot and
// slicing), output construction and the Unsupported fallback boundary.
#include <gtest/gtest.h>

#include "archis/translator.h"

namespace archis::core {
namespace {

Date D(int y, int m, int d) { return Date::FromYmd(y, m, d); }

TranslatorContext Ctx() {
  TranslatorContext ctx;
  ctx.current_date = D(2003, 6, 1);
  ctx.docs["employees.xml"] = {"employees", "employees", "employee"};
  ctx.docs["depts.xml"] = {"depts", "depts", "dept"};
  return ctx;
}

TEST(TranslatorTest, Query1IdentifiesTitleAndNameVariables) {
  auto plan = TranslateXQuery(
      "element title_history{ for $t in doc(\"employees.xml\")/employees/"
      "employee[name=\"Bob\"]/title return $t }",
      Ctx());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Algorithm 1's worked example: two tuple variables, employee_title and
  // employee_name, joined on id, with name = 'Bob'.
  ASSERT_EQ(plan->vars.size(), 2u);
  const PlanVar* title = nullptr;
  const PlanVar* name = nullptr;
  for (const PlanVar& v : plan->vars) {
    if (v.attribute == "title") title = &v;
    if (v.attribute == "name") name = &v;
  }
  ASSERT_NE(title, nullptr);
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(title->join_group, name->join_group);
  ASSERT_EQ(name->value_conds.size(), 1u);
  EXPECT_EQ(name->value_conds[0].constant.AsString(), "Bob");
  // Output: XMLElement(title_history, XMLAgg(...)) with GROUP BY.
  std::string sql = plan->ToSql();
  EXPECT_NE(sql.find("XMLElement(Name \"title_history\""),
            std::string::npos);
  EXPECT_NE(sql.find("XMLAgg"), std::string::npos);
  EXPECT_NE(sql.find("GROUP BY"), std::string::npos);
  EXPECT_NE(sql.find("employees_title"), std::string::npos);
  EXPECT_NE(sql.find("= 'Bob'"), std::string::npos);
}

TEST(TranslatorTest, SnapshotPredicatePushesDownAsPoint) {
  auto plan = TranslateXQuery(
      "for $m in doc(\"depts.xml\")/depts/dept/mgrno"
      "[tstart(.) <= xs:date(\"1994-05-06\") and"
      " tend(.) >= xs:date(\"1994-05-06\")] return $m",
      Ctx());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->vars.size(), 1u);
  ASSERT_TRUE(plan->vars[0].snapshot.has_value());
  EXPECT_EQ(*plan->vars[0].snapshot, D(1994, 5, 6));
  // Section 6.3's rewriting shows up in the SQL text as a segment lookup.
  EXPECT_NE(plan->ToSql().find("SEGMENT_OF"), std::string::npos);
}

TEST(TranslatorTest, SlicingWindowPushesDownAsOverlap) {
  auto plan = TranslateXQuery(
      "for $m in doc(\"employees.xml\")/employees/employee/salary"
      "[tstart(.) <= xs:date(\"1995-05-06\") and"
      " tend(.) >= xs:date(\"1994-05-06\")] return $m",
      Ctx());
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->vars[0].overlap.has_value());
  EXPECT_EQ(plan->vars[0].overlap->tstart, D(1994, 5, 6));
  EXPECT_EQ(plan->vars[0].overlap->tend, D(1995, 5, 6));
}

TEST(TranslatorTest, ToverlapsWithTelementPushesDown) {
  auto plan = TranslateXQuery(
      "for $e in doc(\"employees.xml\")/employees/employee"
      "[ toverlaps(., telement(xs:date(\"1994-05-06\"),"
      " xs:date(\"1995-05-06\"))) ] return $e/name",
      Ctx());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Key variable carries the overlap; name variable joins on id.
  const PlanVar* key = nullptr;
  for (const PlanVar& v : plan->vars) {
    if (v.attribute.empty()) key = &v;
  }
  ASSERT_NE(key, nullptr);
  ASSERT_TRUE(key->overlap.has_value());
  EXPECT_EQ(key->overlap->tstart, D(1994, 5, 6));
}

TEST(TranslatorTest, CurrentTenseTendBecomesCurrentOnly) {
  auto plan = TranslateXQuery(
      "for $e in doc(\"employees.xml\")/employees/employee "
      "let $m := $e/title[.=\"Sr Engineer\" and tend(.)=current-date()] "
      "where not empty($m) return $e/id",
      Ctx());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const PlanVar* title = nullptr;
  for (const PlanVar& v : plan->vars) {
    if (v.attribute == "title") title = &v;
  }
  ASSERT_NE(title, nullptr);
  EXPECT_TRUE(title->current_only);
  ASSERT_EQ(title->value_conds.size(), 1u);
  EXPECT_EQ(title->value_conds[0].constant.AsString(), "Sr Engineer");
}

TEST(TranslatorTest, CrossRelationValueJoinKeepsGroupsApart) {
  auto plan = TranslateXQuery(
      "for $d in doc(\"depts.xml\")/depts/dept "
      "for $e in doc(\"employees.xml\")/employees/employee "
      "where $e/deptno = $d/deptno return $e/name",
      Ctx());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Variables over different docs must be in different join groups, with a
  // cross condition on deptno values.
  std::set<size_t> emp_groups, dept_groups;
  for (const PlanVar& v : plan->vars) {
    (v.relation == "employees" ? emp_groups : dept_groups)
        .insert(v.join_group);
  }
  ASSERT_EQ(emp_groups.size(), 1u);
  ASSERT_EQ(dept_groups.size(), 1u);
  EXPECT_NE(*emp_groups.begin(), *dept_groups.begin());
  ASSERT_EQ(plan->cross_conds.size(), 1u);
  EXPECT_EQ(plan->cross_conds[0].kind, CrossCond::Kind::kCompare);
}

TEST(TranslatorTest, TavgBecomesTemporalAggregate) {
  auto plan = TranslateXQuery(
      "let $s := doc(\"employees.xml\")/employees/employee/salary "
      "return tavg($s)",
      Ctx());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->aggregate, PlanAggregate::kTAvg);
  EXPECT_NE(plan->ToSql().find("TAVG"), std::string::npos);
}

TEST(TranslatorTest, SingleObjectIdConditionPropagatesToGroup) {
  auto plan = TranslateXQuery(
      "for $e in doc(\"employees.xml\")/employees/employee[id=100002] "
      "return $e/salary",
      Ctx());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  for (const PlanVar& v : plan->vars) {
    ASSERT_TRUE(v.id_eq.has_value()) << v.xq_name;
    EXPECT_EQ(*v.id_eq, 100002);
  }
}

TEST(TranslatorTest, UnsupportedConstructsFallBackCleanly) {
  // Quantified where (QUERY 8), restructure (QUERY 6), unknown docs.
  EXPECT_EQ(TranslateXQuery(
                "for $e in doc(\"employees.xml\")/employees/employee "
                "where every $d in $e/deptno satisfies ($d = \"d01\") "
                "return $e/name",
                Ctx())
                .status()
                .code(),
            StatusCode::kUnsupported);
  EXPECT_EQ(TranslateXQuery(
                "for $e in doc(\"employees.xml\")/employees/employee "
                "let $o := restructure($e/deptno, $e/title) "
                "return max($o)",
                Ctx())
                .status()
                .code(),
            StatusCode::kUnsupported);
  EXPECT_EQ(TranslateXQuery(
                "for $e in doc(\"unknown.xml\")/a/b return $e", Ctx())
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(TranslateXQuery("1 + 2", Ctx()).status().code(),
            StatusCode::kUnsupported);
}

TEST(TranslatorTest, TranslationIsFastEnough) {
  // The paper reports < 0.1ms per query; allow a generous bound here just
  // to catch pathological regressions (real measurement in bench/).
  const std::string q =
      "element title_history{ for $t in doc(\"employees.xml\")/employees/"
      "employee[name=\"Bob\"]/title return $t }";
  auto ctx = Ctx();
  for (int i = 0; i < 100; ++i) {
    auto plan = TranslateXQuery(q, ctx);
    ASSERT_TRUE(plan.ok());
  }
  SUCCEED();
}

}  // namespace
}  // namespace archis::core
